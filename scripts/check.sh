#!/usr/bin/env bash
# Tier-1 gate: configure, build, test — then repeat under ASan/UBSan, and
# run the concurrent service tests under TSan.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== Tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== Differential: cached service vs oracle, release build =="
# The harness's own default seed is fixed (deterministic bare ctest); this
# stage explores fresh seeds on developer machines and pins one in CI so
# gate results are reproducible. Failures print the seed for --seed replay.
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j"$JOBS" --target differential_test
if [[ -n "${CI:-}" ]]; then
  DIFF_SEED=20260806
else
  DIFF_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
fi
echo "-- differential seed: $DIFF_SEED"
./build-rel/tests/differential_test --seed="$DIFF_SEED"

echo "== Bench smoke: every bench_* runs one tiny iteration =="
# Not a measurement — just proof that each benchmark still sets up its
# policy, runs, and tears down. (This toolchain's google-benchmark takes a
# plain seconds double for --benchmark_min_time.) bench_fastpath is built
# explicitly so the zero-hop A/B always exists even in a stale tree.
cmake --build build -j"$JOBS" --target bench_fastpath
for bench in build/bench/bench_*; do
  [[ -x "$bench" ]] || continue
  echo "-- $(basename "$bench")"
  "$bench" --benchmark_min_time=0.001 >/dev/null
done

if [[ "${1:-}" == "--no-sanitize" ]]; then
  echo "== Skipping sanitizer pass =="
  exit 0
fi

echo "== Sanitizer pass: address,undefined =="
cmake -B build-asan -S . -DSENTINELPP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -j"$JOBS"

# TSan is incompatible with ASan, so the threaded service tests get their
# own build tree.
echo "== Sanitizer pass: thread (service + mailbox + fast-path tests) =="
cmake -B build-tsan -S . -DSENTINELPP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-tsan -j"$JOBS" --target service_test mailbox_test \
  fastpath_test interner_test
ctest --test-dir build-tsan --output-on-failure \
  -R '^(service_test|mailbox_test|fastpath_test|interner_test)$'

echo "== Overload stress: stall-injected shed/deadline paths under TSan =="
# The acceptance stress for the bounded-mailbox work: shard stalls injected
# via InjectShardFault while producers saturate a capacity-8 mailbox.
# Repeated runs shake out schedule-dependent interleavings; the test itself
# asserts bounded peak depth, exact shed/expired accounting against a
# statically known oracle, and drain-not-drop shutdown.
./build-tsan/tests/service_test \
  --gtest_filter='ServiceOverloadTest.*:ServiceStressTest.OverloadShedStressBoundedCountedAndDrained' \
  --gtest_repeat=3 --gtest_brief=1

echo "== Fast-path stress: snapshot readers vs broadcast storm under TSan =="
# The acceptance stress for the zero-hop read path: concurrent callers
# replay two stable-truth verdicts from the shards' seqlock snapshots while
# admin broadcasts, session churn and timer advances republish the stamps
# underneath them. The test asserts zero verdict divergences and a
# post-storm linearization check; TSan checks the seqlock and ring
# protocols. Repeats shake out schedule-dependent interleavings.
./build-tsan/tests/fastpath_test \
  --gtest_filter='FastPathStressTest.*' --gtest_repeat=3 --gtest_brief=1

echo "== All checks passed =="
