#!/usr/bin/env bash
# Tier-1 gate: configure, build, test — then repeat under ASan/UBSan, and
# run the concurrent service tests under TSan.
#
# Usage: scripts/check.sh [--no-sanitize]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS=$(nproc 2>/dev/null || echo 4)

echo "== Tier-1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j"$JOBS"
ctest --test-dir build --output-on-failure -j"$JOBS"

echo "== Differential: cached service vs oracle, release build =="
# The harness's own default seed is fixed (deterministic bare ctest); this
# stage explores fresh seeds on developer machines and pins one in CI so
# gate results are reproducible. Failures print the seed for --seed replay.
cmake -B build-rel -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-rel -j"$JOBS" --target differential_test
if [[ -n "${CI:-}" ]]; then
  DIFF_SEED=20260806
else
  DIFF_SEED=$(od -An -N4 -tu4 /dev/urandom | tr -d ' ')
fi
echo "-- differential seed: $DIFF_SEED"
./build-rel/tests/differential_test --seed="$DIFF_SEED"

echo "== Bench smoke: every bench_* runs one tiny iteration =="
# Not a measurement — just proof that each benchmark still sets up its
# policy, runs, and tears down. (This toolchain's google-benchmark takes a
# plain seconds double for --benchmark_min_time.) bench_fastpath and
# bench_policy_swap are built explicitly so the zero-hop and update-churn
# A/Bs always exist even in a stale tree.
cmake --build build -j"$JOBS" --target bench_fastpath bench_policy_swap
for bench in build/bench/bench_*; do
  [[ -x "$bench" ]] || continue
  echo "-- $(basename "$bench")"
  "$bench" --benchmark_min_time=0.001 >/dev/null
done

# Exercises the shipped binaries over a real socket: serve on an ephemeral
# port, parse the bound port from its banner line, run a fixed-count load,
# assert zero protocol errors from the client (its exit code) AND from the
# server's shutdown stats line, and require the `drained` marker proving a
# graceful stop. $1 is the build tree.
net_smoke() {
  local tree="$1"
  cmake --build "$tree" -j"$JOBS" --target sentinelpp_serve sentinelpp_load
  local log
  log=$(mktemp)
  "./$tree/examples/sentinelpp-serve" --port=0 --cache=1024 --fastpath=1 \
    >"$log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "net-smoke: server never announced its port" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    cat "$log" >&2
    return 1
  fi
  "./$tree/examples/sentinelpp-load" --port="$port" --connections=4 \
    --requests=500 --batch=8
  "./$tree/examples/sentinelpp-load" --port="$port" --mode=open \
    --rate=5000 --requests=2000 --connections=2
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  grep -E 'protocol_errors=0 .*drained$' "$log" >/dev/null || {
    echo "net-smoke: server stats line missing protocol_errors=0 + drained" >&2
    cat "$log" >&2
    return 1
  }
  rm -f "$log"
}

echo "== Net smoke: serve + load over a real socket =="
net_smoke build

# Same serve+load pairing with --update-churn driving pauseless policy
# swaps from an in-process admin thread while the load runs: asserts the
# server survived sustained generation flips under real network traffic
# (zero protocol errors, graceful drain) and that swaps actually happened
# (swaps= in the stats line is nonzero).
swap_churn_smoke() {
  local tree="$1"
  cmake --build "$tree" -j"$JOBS" --target sentinelpp_serve sentinelpp_load
  local log
  log=$(mktemp)
  "./$tree/examples/sentinelpp-serve" --port=0 --cache=1024 --fastpath=1 \
    --update-churn=5 >"$log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "swap-churn-smoke: server never announced its port" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    cat "$log" >&2
    return 1
  fi
  "./$tree/examples/sentinelpp-load" --port="$port" --connections=4 \
    --requests=500 --batch=8
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  grep -E 'protocol_errors=0 .*swaps=[1-9][0-9]* .*drained$' "$log" \
    >/dev/null || {
    echo "swap-churn-smoke: stats line missing protocol_errors=0 + swaps>0" >&2
    cat "$log" >&2
    return 1
  }
  rm -f "$log"
}

echo "== Swap-churn smoke: serve + load under sustained policy updates =="
swap_churn_smoke build

# The audit pipeline end to end over a real socket: serve with the JSONL
# exporter attached, push a fixed load, then require (a) the shutdown stats
# line reports zero audit drops — the complete-stream guarantee under
# net-smoke load at the default queue size — and (b) every exported line
# parses back through the replay loader, with the loader's record count
# agreeing exactly with the server's own audit_records counter.
audit_smoke() {
  local tree="$1"
  cmake --build "$tree" -j"$JOBS" --target sentinelpp_serve sentinelpp_load \
    sentinelpp_replay
  local log tmpdir
  log=$(mktemp)
  tmpdir=$(mktemp -d)
  "./$tree/examples/sentinelpp-serve" --port=0 \
    --audit="$tmpdir/audit.jsonl" >"$log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "audit-smoke: server never announced its port" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    cat "$log" >&2
    return 1
  fi
  "./$tree/examples/sentinelpp-load" --port="$port" --connections=4 \
    --requests=500 --batch=8
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  grep -E 'audit_drops=0 drained$' "$log" >/dev/null || {
    echo "audit-smoke: server stats line missing audit_drops=0" >&2
    cat "$log" >&2
    return 1
  }
  local exported parsed
  exported=$(sed -n 's/.* audit_records=\([0-9]*\) .*/\1/p' "$log")
  parsed=$("./$tree/examples/sentinelpp-replay" \
    --capture="$tmpdir/audit.jsonl" --parse-only)
  echo "$parsed" | grep -q '^parse_errors: 0$' || {
    echo "audit-smoke: capture had parse errors" >&2
    echo "$parsed" >&2
    return 1
  }
  echo "$parsed" | grep -q "^records: $exported\$" || {
    echo "audit-smoke: capture/counter mismatch (counter=$exported)" >&2
    echo "$parsed" >&2
    return 1
  }
  rm -rf "$log" "$tmpdir"
}

echo "== Audit smoke: exported stream is complete and parseable =="
audit_smoke build

# The admission-policer fairness contract over a real socket: one abusive
# principal (u0000, pinned to 50 tokens/s) and the well-behaved rest share
# a server running --quota-mode=always. Two load instances with disjoint
# --user-base ranges attribute refusals per principal class: the abusive
# load must absorb >=90% refusals on its own traffic, the well-behaved
# load must see zero, and the server must report zero protocol errors,
# nonzero policer_refused, and a clean drain.
policer_smoke() {
  local tree="$1"
  cmake --build "$tree" -j"$JOBS" --target sentinelpp_serve sentinelpp_load
  local log
  log=$(mktemp)
  "./$tree/examples/sentinelpp-serve" --port=0 --shards=1 --users=10 \
    --quota-rate=100000 --quota-burst=64 --quota-user=u0000:50:4 \
    --quota-mode=always >"$log" 2>&1 &
  local serve_pid=$!
  local port=""
  for _ in $(seq 1 100); do
    port=$(sed -n 's/^listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$log")
    [[ -n "$port" ]] && break
    sleep 0.1
  done
  if [[ -z "$port" ]]; then
    echo "policer-smoke: server never announced its port" >&2
    kill -9 "$serve_pid" 2>/dev/null || true
    cat "$log" >&2
    return 1
  fi
  local abusive good
  abusive=$("./$tree/examples/sentinelpp-load" --port="$port" \
    --connections=2 --requests=2000 --batch=8 --users=10 \
    --user-base=0 --user-count=1)
  good=$("./$tree/examples/sentinelpp-load" --port="$port" \
    --connections=2 --requests=2000 --batch=8 --users=10 --user-base=1)
  kill -TERM "$serve_pid"
  wait "$serve_pid"
  echo "policer-smoke abusive: $abusive"
  echo "policer-smoke good:    $good"
  local abusive_answered abusive_overloaded good_overloaded
  abusive_answered=$(sed -n 's/.* answered=\([0-9]*\) .*/\1/p' <<<"$abusive")
  abusive_overloaded=$(sed -n 's/.* overloaded=\([0-9]*\) .*/\1/p' <<<"$abusive")
  good_overloaded=$(sed -n 's/.* overloaded=\([0-9]*\) .*/\1/p' <<<"$good")
  if (( abusive_overloaded * 10 < abusive_answered * 9 )); then
    echo "policer-smoke: abusive refusal share below 90%" >&2
    return 1
  fi
  if (( good_overloaded != 0 )); then
    echo "policer-smoke: well-behaved principals were refused" >&2
    return 1
  fi
  grep -E 'protocol_errors=0 .*policer_refused=[1-9][0-9]* drained$' \
    "$log" >/dev/null || {
    echo "policer-smoke: stats line missing policer_refused>0 + drained" >&2
    cat "$log" >&2
    return 1
  }
  rm -f "$log"
}

echo "== Policer smoke: weighted refusals land on the abusive principal =="
policer_smoke build

if [[ "${1:-}" == "--no-sanitize" ]]; then
  echo "== Skipping sanitizer pass =="
  exit 0
fi

echo "== Sanitizer pass: address,undefined =="
cmake -B build-asan -S . -DSENTINELPP_SANITIZE=address,undefined \
  -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-asan -j"$JOBS"
ctest --test-dir build-asan --output-on-failure -j"$JOBS"

echo "== Net smoke under ASan =="
net_smoke build-asan

echo "== Replay determinism under ASan: capture -> zero-diff shadow eval =="
# The record/replay acceptance loop on the instrumented tree: a smoke-scale
# soak captures a multi-thousand-decision stream plus its policy and a
# one-DSD-edge mutation of it. Replaying against the unchanged policy must
# produce zero verdict diffs (--expect-zero-diffs exits 3 otherwise); the
# mutated policy must replay cleanly (diffs expected, exit 0 without the
# strict flag) — both paths under ASan/UBSan.
REPLAY_TMP=$(mktemp -d)
./build-asan/examples/sentinelpp-soak --scale=smoke \
  --audit="$REPLAY_TMP/capture.jsonl" \
  --policy-out="$REPLAY_TMP/policy.acp" \
  --mutated-policy-out="$REPLAY_TMP/mutated.acp" --expect-no-drops
./build-asan/examples/sentinelpp-replay \
  --capture="$REPLAY_TMP/capture.jsonl" --policy="$REPLAY_TMP/policy.acp" \
  --expect-zero-diffs >/dev/null
./build-asan/examples/sentinelpp-replay \
  --capture="$REPLAY_TMP/capture.jsonl" --policy="$REPLAY_TMP/mutated.acp" \
  >/dev/null
rm -rf "$REPLAY_TMP"

# TSan is incompatible with ASan, so the threaded service tests get their
# own build tree.
echo "== Sanitizer pass: thread (service + mailbox + fast-path + net tests) =="
cmake -B build-tsan -S . -DSENTINELPP_SANITIZE=thread \
  -DCMAKE_BUILD_TYPE=Debug >/dev/null
cmake --build build-tsan -j"$JOBS" --target service_test mailbox_test \
  policer_test fastpath_test interner_test wire_test net_test audit_test \
  policy_swap_test
ctest --test-dir build-tsan --output-on-failure \
  -R '^(service_test|mailbox_test|policer_test|fastpath_test|interner_test|wire_test|net_test|audit_test|policy_swap_test)$'

echo "== Overload stress: stall-injected shed/deadline paths under TSan =="
# The acceptance stress for the bounded-mailbox work: shard stalls injected
# via InjectShardFault while producers saturate a capacity-8 mailbox.
# Repeated runs shake out schedule-dependent interleavings; the test itself
# asserts bounded peak depth, exact shed/expired accounting against a
# statically known oracle, and drain-not-drop shutdown.
./build-tsan/tests/service_test \
  --gtest_filter='ServiceOverloadTest.*:ServiceStressTest.OverloadShedStressBoundedCountedAndDrained' \
  --gtest_repeat=3 --gtest_brief=1

echo "== Fast-path stress: snapshot readers vs broadcast storm under TSan =="
# The acceptance stress for the zero-hop read path: concurrent callers
# replay two stable-truth verdicts from the shards' seqlock snapshots while
# admin broadcasts, session churn and timer advances republish the stamps
# underneath them. The test asserts zero verdict divergences and a
# post-storm linearization check; TSan checks the seqlock and ring
# protocols. Repeats shake out schedule-dependent interleavings.
./build-tsan/tests/fastpath_test \
  --gtest_filter='FastPathStressTest.*' --gtest_repeat=3 --gtest_brief=1

echo "== Swap stress: pauseless generation flips vs in-flight batches under TSan =="
# The acceptance stress for the pauseless policy swap: admin threads drive
# back-to-back PreparePolicyUpdate/commit generation flips while checker
# threads keep batches in flight and the cache keeps serving stamped
# entries. The tests assert every verdict matches exactly one of the two
# policy generations and that caches never serve a stale pool's entry;
# TSan checks the shared_ptr flip and generation-stamp protocols.
./build-tsan/tests/policy_swap_test --gtest_repeat=3 --gtest_brief=1

echo "== Net stress: concurrent clients vs reactor vs admin churn under TSan =="
# N client threads (mixed single checks and pipelined bursts) against the
# epoll reactor, the shard threads, the zero-hop fastpath and a concurrent
# admin-churn thread driving the epoch barrier — every cross-thread handoff
# in the serving stack under TSan at once.
./build-tsan/tests/net_test \
  --gtest_filter='NetTest.ConcurrentClientsWithAdminChurn' \
  --gtest_repeat=3 --gtest_brief=1

echo "== All checks passed =="
