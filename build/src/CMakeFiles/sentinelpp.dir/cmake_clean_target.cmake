file(REMOVE_RECURSE
  "libsentinelpp.a"
)
