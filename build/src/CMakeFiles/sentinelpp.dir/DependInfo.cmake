
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/baseline/direct_enforcer.cc" "src/CMakeFiles/sentinelpp.dir/baseline/direct_enforcer.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/baseline/direct_enforcer.cc.o.d"
  "/root/repo/src/baseline/trbac_baseline.cc" "src/CMakeFiles/sentinelpp.dir/baseline/trbac_baseline.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/baseline/trbac_baseline.cc.o.d"
  "/root/repo/src/common/calendar.cc" "src/CMakeFiles/sentinelpp.dir/common/calendar.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/common/calendar.cc.o.d"
  "/root/repo/src/common/clock.cc" "src/CMakeFiles/sentinelpp.dir/common/clock.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/common/clock.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/sentinelpp.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/common/logging.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/sentinelpp.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/sentinelpp.dir/common/status.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/common/status.cc.o.d"
  "/root/repo/src/common/value.cc" "src/CMakeFiles/sentinelpp.dir/common/value.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/common/value.cc.o.d"
  "/root/repo/src/core/active_security.cc" "src/CMakeFiles/sentinelpp.dir/core/active_security.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/active_security.cc.o.d"
  "/root/repo/src/core/consistency.cc" "src/CMakeFiles/sentinelpp.dir/core/consistency.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/consistency.cc.o.d"
  "/root/repo/src/core/engine.cc" "src/CMakeFiles/sentinelpp.dir/core/engine.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/engine.cc.o.d"
  "/root/repo/src/core/policy.cc" "src/CMakeFiles/sentinelpp.dir/core/policy.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/policy.cc.o.d"
  "/root/repo/src/core/policy_parser.cc" "src/CMakeFiles/sentinelpp.dir/core/policy_parser.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/policy_parser.cc.o.d"
  "/root/repo/src/core/privacy.cc" "src/CMakeFiles/sentinelpp.dir/core/privacy.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/privacy.cc.o.d"
  "/root/repo/src/core/report.cc" "src/CMakeFiles/sentinelpp.dir/core/report.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/report.cc.o.d"
  "/root/repo/src/core/rule_generator.cc" "src/CMakeFiles/sentinelpp.dir/core/rule_generator.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/core/rule_generator.cc.o.d"
  "/root/repo/src/event/event.cc" "src/CMakeFiles/sentinelpp.dir/event/event.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/event/event.cc.o.d"
  "/root/repo/src/event/event_detector.cc" "src/CMakeFiles/sentinelpp.dir/event/event_detector.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/event/event_detector.cc.o.d"
  "/root/repo/src/event/event_registry.cc" "src/CMakeFiles/sentinelpp.dir/event/event_registry.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/event/event_registry.cc.o.d"
  "/root/repo/src/event/operator_node.cc" "src/CMakeFiles/sentinelpp.dir/event/operator_node.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/event/operator_node.cc.o.d"
  "/root/repo/src/event/time_pattern.cc" "src/CMakeFiles/sentinelpp.dir/event/time_pattern.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/event/time_pattern.cc.o.d"
  "/root/repo/src/event/timer_service.cc" "src/CMakeFiles/sentinelpp.dir/event/timer_service.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/event/timer_service.cc.o.d"
  "/root/repo/src/gtrbac/periodic_expression.cc" "src/CMakeFiles/sentinelpp.dir/gtrbac/periodic_expression.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/gtrbac/periodic_expression.cc.o.d"
  "/root/repo/src/gtrbac/role_state.cc" "src/CMakeFiles/sentinelpp.dir/gtrbac/role_state.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/gtrbac/role_state.cc.o.d"
  "/root/repo/src/gtrbac/temporal_constraint.cc" "src/CMakeFiles/sentinelpp.dir/gtrbac/temporal_constraint.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/gtrbac/temporal_constraint.cc.o.d"
  "/root/repo/src/rbac/core_api.cc" "src/CMakeFiles/sentinelpp.dir/rbac/core_api.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/rbac/core_api.cc.o.d"
  "/root/repo/src/rbac/database.cc" "src/CMakeFiles/sentinelpp.dir/rbac/database.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/rbac/database.cc.o.d"
  "/root/repo/src/rbac/hierarchy.cc" "src/CMakeFiles/sentinelpp.dir/rbac/hierarchy.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/rbac/hierarchy.cc.o.d"
  "/root/repo/src/rbac/sod.cc" "src/CMakeFiles/sentinelpp.dir/rbac/sod.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/rbac/sod.cc.o.d"
  "/root/repo/src/rules/rule.cc" "src/CMakeFiles/sentinelpp.dir/rules/rule.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/rules/rule.cc.o.d"
  "/root/repo/src/rules/rule_manager.cc" "src/CMakeFiles/sentinelpp.dir/rules/rule_manager.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/rules/rule_manager.cc.o.d"
  "/root/repo/src/workload/policy_gen.cc" "src/CMakeFiles/sentinelpp.dir/workload/policy_gen.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/workload/policy_gen.cc.o.d"
  "/root/repo/src/workload/request_gen.cc" "src/CMakeFiles/sentinelpp.dir/workload/request_gen.cc.o" "gcc" "src/CMakeFiles/sentinelpp.dir/workload/request_gen.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
