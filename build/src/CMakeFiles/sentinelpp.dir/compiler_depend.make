# Empty compiler generated dependencies file for sentinelpp.
# This may be replaced when dependencies are built.
