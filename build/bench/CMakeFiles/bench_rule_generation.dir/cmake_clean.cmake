file(REMOVE_RECURSE
  "CMakeFiles/bench_rule_generation.dir/bench_rule_generation.cc.o"
  "CMakeFiles/bench_rule_generation.dir/bench_rule_generation.cc.o.d"
  "bench_rule_generation"
  "bench_rule_generation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rule_generation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
