# Empty dependencies file for bench_rule_generation.
# This may be replaced when dependencies are built.
