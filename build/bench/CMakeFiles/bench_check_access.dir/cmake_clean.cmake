file(REMOVE_RECURSE
  "CMakeFiles/bench_check_access.dir/bench_check_access.cc.o"
  "CMakeFiles/bench_check_access.dir/bench_check_access.cc.o.d"
  "bench_check_access"
  "bench_check_access.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_check_access.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
