# Empty dependencies file for bench_check_access.
# This may be replaced when dependencies are built.
