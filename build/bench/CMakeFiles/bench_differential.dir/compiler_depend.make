# Empty compiler generated dependencies file for bench_differential.
# This may be replaced when dependencies are built.
