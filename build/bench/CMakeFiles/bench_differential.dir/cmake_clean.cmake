file(REMOVE_RECURSE
  "CMakeFiles/bench_differential.dir/bench_differential.cc.o"
  "CMakeFiles/bench_differential.dir/bench_differential.cc.o.d"
  "bench_differential"
  "bench_differential.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_differential.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
