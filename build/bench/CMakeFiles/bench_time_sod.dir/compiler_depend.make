# Empty compiler generated dependencies file for bench_time_sod.
# This may be replaced when dependencies are built.
