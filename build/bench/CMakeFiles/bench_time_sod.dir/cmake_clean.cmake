file(REMOVE_RECURSE
  "CMakeFiles/bench_time_sod.dir/bench_time_sod.cc.o"
  "CMakeFiles/bench_time_sod.dir/bench_time_sod.cc.o.d"
  "bench_time_sod"
  "bench_time_sod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_time_sod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
