# Empty compiler generated dependencies file for bench_event_detection.
# This may be replaced when dependencies are built.
