file(REMOVE_RECURSE
  "CMakeFiles/bench_event_detection.dir/bench_event_detection.cc.o"
  "CMakeFiles/bench_event_detection.dir/bench_event_detection.cc.o.d"
  "bench_event_detection"
  "bench_event_detection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_event_detection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
