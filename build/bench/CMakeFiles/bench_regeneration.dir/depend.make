# Empty dependencies file for bench_regeneration.
# This may be replaced when dependencies are built.
