file(REMOVE_RECURSE
  "CMakeFiles/bench_regeneration.dir/bench_regeneration.cc.o"
  "CMakeFiles/bench_regeneration.dir/bench_regeneration.cc.o.d"
  "bench_regeneration"
  "bench_regeneration.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regeneration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
