file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_xyz.dir/bench_fig1_xyz.cc.o"
  "CMakeFiles/bench_fig1_xyz.dir/bench_fig1_xyz.cc.o.d"
  "bench_fig1_xyz"
  "bench_fig1_xyz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_xyz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
