file(REMOVE_RECURSE
  "CMakeFiles/bench_trbac_compare.dir/bench_trbac_compare.cc.o"
  "CMakeFiles/bench_trbac_compare.dir/bench_trbac_compare.cc.o.d"
  "bench_trbac_compare"
  "bench_trbac_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_trbac_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
