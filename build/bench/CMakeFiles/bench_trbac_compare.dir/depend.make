# Empty dependencies file for bench_trbac_compare.
# This may be replaced when dependencies are built.
