file(REMOVE_RECURSE
  "CMakeFiles/bench_active_security.dir/bench_active_security.cc.o"
  "CMakeFiles/bench_active_security.dir/bench_active_security.cc.o.d"
  "bench_active_security"
  "bench_active_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_active_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
