# Empty compiler generated dependencies file for trbac_test.
# This may be replaced when dependencies are built.
