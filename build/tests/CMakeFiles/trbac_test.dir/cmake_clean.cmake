file(REMOVE_RECURSE
  "CMakeFiles/trbac_test.dir/trbac_test.cc.o"
  "CMakeFiles/trbac_test.dir/trbac_test.cc.o.d"
  "trbac_test"
  "trbac_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trbac_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
