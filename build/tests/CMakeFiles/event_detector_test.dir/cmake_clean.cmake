file(REMOVE_RECURSE
  "CMakeFiles/event_detector_test.dir/event_detector_test.cc.o"
  "CMakeFiles/event_detector_test.dir/event_detector_test.cc.o.d"
  "event_detector_test"
  "event_detector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/event_detector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
