file(REMOVE_RECURSE
  "CMakeFiles/enterprise_xyz_test.dir/enterprise_xyz_test.cc.o"
  "CMakeFiles/enterprise_xyz_test.dir/enterprise_xyz_test.cc.o.d"
  "enterprise_xyz_test"
  "enterprise_xyz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_xyz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
