# Empty compiler generated dependencies file for enterprise_xyz_test.
# This may be replaced when dependencies are built.
