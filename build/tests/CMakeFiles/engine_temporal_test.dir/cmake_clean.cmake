file(REMOVE_RECURSE
  "CMakeFiles/engine_temporal_test.dir/engine_temporal_test.cc.o"
  "CMakeFiles/engine_temporal_test.dir/engine_temporal_test.cc.o.d"
  "engine_temporal_test"
  "engine_temporal_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_temporal_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
