# Empty dependencies file for sod_test.
# This may be replaced when dependencies are built.
