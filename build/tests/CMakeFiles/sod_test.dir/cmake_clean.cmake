file(REMOVE_RECURSE
  "CMakeFiles/sod_test.dir/sod_test.cc.o"
  "CMakeFiles/sod_test.dir/sod_test.cc.o.d"
  "sod_test"
  "sod_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sod_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
