# Empty compiler generated dependencies file for sod_test.
# This may be replaced when dependencies are built.
