file(REMOVE_RECURSE
  "CMakeFiles/periodic_expression_test.dir/periodic_expression_test.cc.o"
  "CMakeFiles/periodic_expression_test.dir/periodic_expression_test.cc.o.d"
  "periodic_expression_test"
  "periodic_expression_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/periodic_expression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
