file(REMOVE_RECURSE
  "CMakeFiles/time_pattern_test.dir/time_pattern_test.cc.o"
  "CMakeFiles/time_pattern_test.dir/time_pattern_test.cc.o.d"
  "time_pattern_test"
  "time_pattern_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_pattern_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
