# Empty dependencies file for time_pattern_test.
# This may be replaced when dependencies are built.
