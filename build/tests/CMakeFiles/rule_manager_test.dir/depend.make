# Empty dependencies file for rule_manager_test.
# This may be replaced when dependencies are built.
