file(REMOVE_RECURSE
  "CMakeFiles/rule_manager_test.dir/rule_manager_test.cc.o"
  "CMakeFiles/rule_manager_test.dir/rule_manager_test.cc.o.d"
  "rule_manager_test"
  "rule_manager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_manager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
