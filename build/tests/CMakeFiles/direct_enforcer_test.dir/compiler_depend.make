# Empty compiler generated dependencies file for direct_enforcer_test.
# This may be replaced when dependencies are built.
