file(REMOVE_RECURSE
  "CMakeFiles/direct_enforcer_test.dir/direct_enforcer_test.cc.o"
  "CMakeFiles/direct_enforcer_test.dir/direct_enforcer_test.cc.o.d"
  "direct_enforcer_test"
  "direct_enforcer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/direct_enforcer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
