file(REMOVE_RECURSE
  "CMakeFiles/policy_parser_test.dir/policy_parser_test.cc.o"
  "CMakeFiles/policy_parser_test.dir/policy_parser_test.cc.o.d"
  "policy_parser_test"
  "policy_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/policy_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
