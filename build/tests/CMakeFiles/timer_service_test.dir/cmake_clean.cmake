file(REMOVE_RECURSE
  "CMakeFiles/timer_service_test.dir/timer_service_test.cc.o"
  "CMakeFiles/timer_service_test.dir/timer_service_test.cc.o.d"
  "timer_service_test"
  "timer_service_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timer_service_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
