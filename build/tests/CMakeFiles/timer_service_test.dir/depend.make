# Empty dependencies file for timer_service_test.
# This may be replaced when dependencies are built.
