# Empty compiler generated dependencies file for rbac_core_test.
# This may be replaced when dependencies are built.
