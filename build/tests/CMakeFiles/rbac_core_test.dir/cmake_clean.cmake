file(REMOVE_RECURSE
  "CMakeFiles/rbac_core_test.dir/rbac_core_test.cc.o"
  "CMakeFiles/rbac_core_test.dir/rbac_core_test.cc.o.d"
  "rbac_core_test"
  "rbac_core_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
