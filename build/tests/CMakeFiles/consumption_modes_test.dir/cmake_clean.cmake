file(REMOVE_RECURSE
  "CMakeFiles/consumption_modes_test.dir/consumption_modes_test.cc.o"
  "CMakeFiles/consumption_modes_test.dir/consumption_modes_test.cc.o.d"
  "consumption_modes_test"
  "consumption_modes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/consumption_modes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
