# Empty compiler generated dependencies file for consumption_modes_test.
# This may be replaced when dependencies are built.
