# Empty dependencies file for regen_test.
# This may be replaced when dependencies are built.
