file(REMOVE_RECURSE
  "CMakeFiles/regen_test.dir/regen_test.cc.o"
  "CMakeFiles/regen_test.dir/regen_test.cc.o.d"
  "regen_test"
  "regen_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/regen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
