file(REMOVE_RECURSE
  "CMakeFiles/rbac_database_test.dir/rbac_database_test.cc.o"
  "CMakeFiles/rbac_database_test.dir/rbac_database_test.cc.o.d"
  "rbac_database_test"
  "rbac_database_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rbac_database_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
