# Empty dependencies file for rbac_database_test.
# This may be replaced when dependencies are built.
