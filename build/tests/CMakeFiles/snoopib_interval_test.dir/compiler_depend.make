# Empty compiler generated dependencies file for snoopib_interval_test.
# This may be replaced when dependencies are built.
