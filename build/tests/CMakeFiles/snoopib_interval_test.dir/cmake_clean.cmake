file(REMOVE_RECURSE
  "CMakeFiles/snoopib_interval_test.dir/snoopib_interval_test.cc.o"
  "CMakeFiles/snoopib_interval_test.dir/snoopib_interval_test.cc.o.d"
  "snoopib_interval_test"
  "snoopib_interval_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snoopib_interval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
