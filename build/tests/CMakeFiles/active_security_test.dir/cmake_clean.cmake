file(REMOVE_RECURSE
  "CMakeFiles/active_security_test.dir/active_security_test.cc.o"
  "CMakeFiles/active_security_test.dir/active_security_test.cc.o.d"
  "active_security_test"
  "active_security_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_security_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
