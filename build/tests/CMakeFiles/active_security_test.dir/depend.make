# Empty dependencies file for active_security_test.
# This may be replaced when dependencies are built.
