file(REMOVE_RECURSE
  "CMakeFiles/calendar_test.dir/calendar_test.cc.o"
  "CMakeFiles/calendar_test.dir/calendar_test.cc.o.d"
  "calendar_test"
  "calendar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/calendar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
