# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_enterprise_xyz "/root/repo/build/examples/enterprise_xyz")
set_tests_properties(example_enterprise_xyz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hospital_gtrbac "/root/repo/build/examples/hospital_gtrbac")
set_tests_properties(example_hospital_gtrbac PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_active_security_monitor "/root/repo/build/examples/active_security_monitor")
set_tests_properties(example_active_security_monitor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_policy_inspector "/root/repo/build/examples/policy_inspector")
set_tests_properties(example_policy_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;9;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspector_xyz "/root/repo/build/examples/policy_inspector" "/root/repo/examples/policies/enterprise_xyz.acp")
set_tests_properties(example_inspector_xyz PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;11;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspector_hospital "/root/repo/build/examples/policy_inspector" "/root/repo/examples/policies/hospital.acp")
set_tests_properties(example_inspector_hospital PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
