# Empty compiler generated dependencies file for enterprise_xyz.
# This may be replaced when dependencies are built.
