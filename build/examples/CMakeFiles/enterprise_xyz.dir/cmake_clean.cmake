file(REMOVE_RECURSE
  "CMakeFiles/enterprise_xyz.dir/enterprise_xyz.cpp.o"
  "CMakeFiles/enterprise_xyz.dir/enterprise_xyz.cpp.o.d"
  "enterprise_xyz"
  "enterprise_xyz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/enterprise_xyz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
