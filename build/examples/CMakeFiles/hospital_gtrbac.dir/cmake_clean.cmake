file(REMOVE_RECURSE
  "CMakeFiles/hospital_gtrbac.dir/hospital_gtrbac.cpp.o"
  "CMakeFiles/hospital_gtrbac.dir/hospital_gtrbac.cpp.o.d"
  "hospital_gtrbac"
  "hospital_gtrbac.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_gtrbac.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
