# Empty compiler generated dependencies file for hospital_gtrbac.
# This may be replaced when dependencies are built.
