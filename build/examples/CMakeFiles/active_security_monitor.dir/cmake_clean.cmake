file(REMOVE_RECURSE
  "CMakeFiles/active_security_monitor.dir/active_security_monitor.cpp.o"
  "CMakeFiles/active_security_monitor.dir/active_security_monitor.cpp.o.d"
  "active_security_monitor"
  "active_security_monitor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/active_security_monitor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
