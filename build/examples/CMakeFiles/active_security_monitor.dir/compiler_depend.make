# Empty compiler generated dependencies file for active_security_monitor.
# This may be replaced when dependencies are built.
