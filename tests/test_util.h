#ifndef SENTINELPP_TESTS_TEST_UTIL_H_
#define SENTINELPP_TESTS_TEST_UTIL_H_

#include <string>

#include "common/calendar.h"
#include "common/clock.h"
#include "core/policy.h"
#include "core/policy_parser.h"
#include "event/time_pattern.h"
#include "gtrbac/periodic_expression.h"

namespace sentinel {
namespace testutil {

/// A fixed reference instant used across tests: 2026-07-06 12:00:00 UTC
/// (a Monday, mid-window for 9-to-5 shifts).
inline Time Noon() { return MakeTime(2026, 7, 6, 12, 0, 0); }

/// Builds a TimePattern for an every-day HH:MM:SS.
inline TimePattern Daily(int hour, int minute = 0, int second = 0) {
  return TimePattern(hour, minute, second, TimePattern::kAny,
                     TimePattern::kAny, TimePattern::kAny);
}

/// Builds the 10:00-17:00 daily periodic expression from the paper's
/// Rule 6 footnote.
inline PeriodicExpression TenToFive() {
  return *PeriodicExpression::Create(Daily(10), Daily(17));
}

/// The paper's Section 5 / Figure 1 enterprise XYZ policy: two hierarchy
/// chains PM -> PC -> Clerk and AM -> AC -> Clerk, static SoD between PC
/// and AC (inherited upward by PM and AM), and a few users/permissions so
/// the scenario is executable.
inline Policy EnterpriseXyzPolicy() {
  const char* text = R"(
policy "enterprise-xyz"

role Clerk { permission: read(ledger) }
role PC { senior-of: Clerk  permission: write(purchase-order) }
role PM { senior-of: PC  permission: approve(budget-request) }
role AC { senior-of: Clerk  permission: write(approval) }
role AM { senior-of: AC  permission: approve(purchase-order) }

ssd SoD1 { roles: PC, AC  n: 2 }

user alice { assign: PM }
user bob { assign: AC }
user carol { assign: Clerk }
)";
  auto policy = PolicyParser::Parse(text);
  return *policy;
}

/// A hospital policy exercising the GTRBAC features: shift-limited
/// DayDoctor, disabling-time SoD between Doctor and Nurse, duration-bound
/// OnCall activations.
inline Policy HospitalPolicy() {
  const char* text = R"(
policy "hospital"

role Doctor { permission: read(patient.dat), write(patient.dat) }
role Nurse { permission: read(patient.dat) }
role DayDoctor { enable: 08:00:00 - 16:00:00  permission: read(ward.log) }
role OnCall { max-activation: 2h  permission: write(pager) }

user dave { assign: Doctor, OnCall }
user nina { assign: Nurse }
user dana { assign: DayDoctor }

time-sod availability { kind: disabling  roles: Doctor, Nurse
                        window: 10:00:00 - 17:00:00 }
)";
  auto policy = PolicyParser::Parse(text);
  return *policy;
}

}  // namespace testutil
}  // namespace sentinel

#endif  // SENTINELPP_TESTS_TEST_UTIL_H_
