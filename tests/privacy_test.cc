#include "core/privacy.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

class PrivacyStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(store_.AddPurpose("business").ok());
    ASSERT_TRUE(store_.AddPurpose("marketing", "business").ok());
    ASSERT_TRUE(store_.AddPurpose("email-campaign", "marketing").ok());
    ASSERT_TRUE(store_.AddPurpose("treatment").ok());
  }
  PrivacyStore store_;
};

TEST_F(PrivacyStoreTest, AddPurposeValidations) {
  EXPECT_TRUE(store_.AddPurpose("").IsInvalidArgument());
  EXPECT_TRUE(store_.AddPurpose("business").IsAlreadyExists());
  EXPECT_TRUE(store_.AddPurpose("x", "ghost").IsNotFound());
  EXPECT_TRUE(store_.HasPurpose("marketing"));
  EXPECT_FALSE(store_.HasPurpose("ghost"));
}

TEST_F(PrivacyStoreTest, EntailmentWalksUpTheHierarchy) {
  EXPECT_TRUE(store_.PurposeEntails("email-campaign", "business"));
  EXPECT_TRUE(store_.PurposeEntails("email-campaign", "marketing"));
  EXPECT_TRUE(store_.PurposeEntails("marketing", "marketing"));
  EXPECT_FALSE(store_.PurposeEntails("business", "marketing"));  // Downward.
  EXPECT_FALSE(store_.PurposeEntails("treatment", "business"));
}

TEST_F(PrivacyStoreTest, ObjectWithoutPolicyIsUnconstrained) {
  EXPECT_TRUE(store_.AccessPermitted("free.dat", ""));
  EXPECT_TRUE(store_.AccessPermitted("free.dat", "anything"));
}

TEST_F(PrivacyStoreTest, ObjectPolicyEnforced) {
  ASSERT_TRUE(store_.SetObjectPolicy("patient.dat", {"treatment"}).ok());
  EXPECT_TRUE(store_.AccessPermitted("patient.dat", "treatment"));
  EXPECT_FALSE(store_.AccessPermitted("patient.dat", "marketing"));
  EXPECT_FALSE(store_.AccessPermitted("patient.dat", ""));
  EXPECT_FALSE(store_.AccessPermitted("patient.dat", "unregistered"));
}

TEST_F(PrivacyStoreTest, SubPurposeSatisfiesPolicy) {
  ASSERT_TRUE(store_.SetObjectPolicy("crm.dat", {"marketing"}).ok());
  EXPECT_TRUE(store_.AccessPermitted("crm.dat", "email-campaign"));
  EXPECT_FALSE(store_.AccessPermitted("crm.dat", "business"));
}

TEST_F(PrivacyStoreTest, PolicyRequiresKnownPurposes) {
  EXPECT_TRUE(store_.SetObjectPolicy("x", {"ghost"}).IsNotFound());
}

TEST_F(PrivacyStoreTest, EmptyPolicyRemoves) {
  ASSERT_TRUE(store_.SetObjectPolicy("x", {"treatment"}).ok());
  EXPECT_TRUE(store_.ObjectHasPolicy("x"));
  ASSERT_TRUE(store_.SetObjectPolicy("x", {}).ok());
  EXPECT_FALSE(store_.ObjectHasPolicy("x"));
  EXPECT_TRUE(store_.AccessPermitted("x", ""));
}

TEST_F(PrivacyStoreTest, DeletePurposeGuardsChildren) {
  EXPECT_TRUE(store_.DeletePurpose("marketing").IsFailedPrecondition());
  ASSERT_TRUE(store_.DeletePurpose("email-campaign").ok());
  ASSERT_TRUE(store_.DeletePurpose("marketing").ok());
  EXPECT_TRUE(store_.DeletePurpose("ghost").IsNotFound());
}

TEST_F(PrivacyStoreTest, ObjectPolicyAccessor) {
  ASSERT_TRUE(store_.SetObjectPolicy("x", {"treatment", "business"}).ok());
  const auto* policy = store_.ObjectPolicy("x");
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->size(), 2u);
  EXPECT_EQ(store_.ObjectPolicy("none"), nullptr);
}

}  // namespace
}  // namespace sentinel
