#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "common/rng.h"
#include "event/event_detector.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// SnoopIB interval-semantics property sweep: composite occurrences carry
/// [start, end] intervals spanning their constituents; nesting composes
/// intervals correctly; detections are totally ordered by sequence number;
/// and SEQ's strict-precedence requirement holds at every nesting depth.
class SnoopIbIntervalTest : public ::testing::Test {
 protected:
  SnoopIbIntervalTest() : clock_(testutil::Noon()), detector_(&clock_) {}

  SimulatedClock clock_;
  EventDetector detector_;
};

TEST_F(SnoopIbIntervalTest, NestedSeqSpansOutermostConstituents) {
  const EventId a = *detector_.DefinePrimitive("a");
  const EventId b = *detector_.DefinePrimitive("b");
  const EventId c = *detector_.DefinePrimitive("c");
  const EventId ab = *detector_.DefineSeq("ab", a, b);
  const EventId abc = *detector_.DefineSeq("abc", ab, c);
  std::vector<Occurrence> log;
  detector_.Subscribe(abc,
                      [&](const Occurrence& occ) { log.push_back(occ); });

  const Time t_a = clock_.Now();
  ASSERT_TRUE(detector_.Raise(a, {}).ok());
  clock_.Advance(kSecond);
  ASSERT_TRUE(detector_.Raise(b, {}).ok());
  clock_.Advance(kSecond);
  const Time t_c = clock_.Now();
  ASSERT_TRUE(detector_.Raise(c, {}).ok());

  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].start, t_a);
  EXPECT_EQ(log[0].end, t_c);
}

TEST_F(SnoopIbIntervalTest, SeqRejectsOverlappingComposite) {
  // SEQ(ab, c) must NOT detect when c occurs *inside* ab's interval
  // (i.e. between a and b) — the interval end of ab is after c's start.
  const EventId a = *detector_.DefinePrimitive("a");
  const EventId b = *detector_.DefinePrimitive("b");
  const EventId c = *detector_.DefinePrimitive("c");
  const EventId ab = *detector_.DefineSeq("ab", a, b);
  const EventId abc = *detector_.DefineSeq("abc", ab, c);
  int detections = 0;
  detector_.Subscribe(abc, [&](const Occurrence&) { ++detections; });

  ASSERT_TRUE(detector_.Raise(a, {}).ok());
  clock_.Advance(kSecond);
  ASSERT_TRUE(detector_.Raise(c, {}).ok());  // Inside (a, b): no pairing.
  clock_.Advance(kSecond);
  ASSERT_TRUE(detector_.Raise(b, {}).ok());  // ab completes after c.
  EXPECT_EQ(detections, 0);
  // A later c does pair.
  clock_.Advance(kSecond);
  ASSERT_TRUE(detector_.Raise(c, {}).ok());
  EXPECT_EQ(detections, 1);
}

TEST_F(SnoopIbIntervalTest, AndIntervalIsUnionOfPair) {
  const EventId a = *detector_.DefinePrimitive("a");
  const EventId b = *detector_.DefinePrimitive("b");
  const EventId and_ev = *detector_.DefineAnd("and", a, b);
  std::vector<Occurrence> log;
  detector_.Subscribe(and_ev,
                      [&](const Occurrence& occ) { log.push_back(occ); });
  const Time t_b = clock_.Now();
  ASSERT_TRUE(detector_.Raise(b, {}).ok());
  clock_.Advance(3 * kSecond);
  const Time t_a = clock_.Now();
  ASSERT_TRUE(detector_.Raise(a, {}).ok());
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].start, t_b);  // Earliest constituent.
  EXPECT_EQ(log[0].end, t_a);    // Detection instant.
}

TEST_F(SnoopIbIntervalTest, PlusIntervalSpansInitiationToExpiry) {
  const EventId a = *detector_.DefinePrimitive("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 10 * kSecond);
  std::vector<Occurrence> log;
  detector_.Subscribe(plus,
                      [&](const Occurrence& occ) { log.push_back(occ); });
  const Time t_a = clock_.Now();
  ASSERT_TRUE(detector_.Raise(a, {}).ok());
  detector_.AdvanceTo(t_a + kMinute, &clock_);
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].start, t_a);
  EXPECT_EQ(log[0].end, t_a + 10 * kSecond);
}

// Property sweep: random interleavings into a two-level operator tree.
// For every detection: start <= end, the interval lies within the span of
// raised primitives, and sequence numbers increase monotonically.
TEST_F(SnoopIbIntervalTest, RandomInterleavingsKeepIntervalInvariants) {
  Rng rng(777);
  for (int round = 0; round < 50; ++round) {
    SimulatedClock clock(testutil::Noon());
    EventDetector detector(&clock);
    const EventId a = *detector.DefinePrimitive("a");
    const EventId b = *detector.DefinePrimitive("b");
    const EventId c = *detector.DefinePrimitive("c");
    const EventId seq = *detector.DefineSeq(
        "seq", a, b,
        static_cast<ConsumptionMode>(rng.NextBounded(4)));
    const EventId top = *detector.DefineAnd(
        "top", seq, c, static_cast<ConsumptionMode>(rng.NextBounded(4)));

    std::vector<Occurrence> detections;
    detector.Subscribe(top, [&](const Occurrence& occ) {
      detections.push_back(occ);
    });

    const Time begin = clock.Now();
    const EventId prims[] = {a, b, c};
    for (int i = 0; i < 40; ++i) {
      clock.Advance(static_cast<Duration>(rng.NextInt(1, 2000)) *
                    kMillisecond);
      ASSERT_TRUE(detector.Raise(prims[rng.NextBounded(3)], {}).ok());
    }
    const Time finish = clock.Now();

    uint64_t last_seq = 0;
    for (const Occurrence& occ : detections) {
      EXPECT_LE(occ.start, occ.end) << "round " << round;
      EXPECT_GE(occ.start, begin) << "round " << round;
      EXPECT_LE(occ.end, finish) << "round " << round;
      EXPECT_GT(occ.seq, last_seq) << "round " << round;
      last_seq = occ.seq;
    }
  }
}

// Property: in chronicle mode, SEQ pairs are non-overlapping and ordered —
// each detection's initiator strictly precedes its terminator, and
// consumed initiators never pair twice.
TEST_F(SnoopIbIntervalTest, ChronicleSeqPairsAreDisjointAndOrdered) {
  Rng rng(4242);
  SimulatedClock clock(testutil::Noon());
  EventDetector detector(&clock);
  const EventId a = *detector.DefinePrimitive("a");
  const EventId b = *detector.DefinePrimitive("b");
  const EventId seq =
      *detector.DefineSeq("seq", a, b, ConsumptionMode::kChronicle);
  std::vector<Occurrence> detections;
  detector.Subscribe(seq, [&](const Occurrence& occ) {
    detections.push_back(occ);
  });

  int raised_a = 0, raised_b = 0;
  for (int i = 0; i < 400; ++i) {
    clock.Advance(kSecond);
    if (rng.NextBool(0.5)) {
      ++raised_a;
      ASSERT_TRUE(detector.Raise(a, {}).ok());
    } else {
      ++raised_b;
      ASSERT_TRUE(detector.Raise(b, {}).ok());
    }
  }
  // Each detection consumed one a: detections <= min(#a, #b).
  EXPECT_LE(static_cast<int>(detections.size()),
            std::min(raised_a, raised_b));
  // FIFO pairing: initiator starts strictly increase across detections.
  for (size_t i = 1; i < detections.size(); ++i) {
    EXPECT_GT(detections[i].start, detections[i - 1].start);
    EXPECT_GT(detections[i].end, detections[i - 1].end);
  }
}

}  // namespace
}  // namespace sentinel
