#include <gtest/gtest.h>

#include "core/engine.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"
#include "workload/request_gen.h"

namespace sentinel {
namespace {

/// Safety-property sweep: run random workloads through the engine alone
/// and assert, after every single request, that the security invariants
/// the generated rules are supposed to maintain actually hold on the RBAC
/// state. Unlike the differential test (which could in principle agree
/// with the baseline on a shared bug), these checks are derived straight
/// from the NIST/GTRBAC definitions.
class InvariantsTest : public ::testing::TestWithParam<uint64_t> {};

void CheckInvariants(const AuthorizationEngine& engine, size_t step) {
  const Policy& policy = engine.policy();
  const RbacSystem& rbac = engine.rbac();

  // I1 — every active role is authorized for the session's user, enabled,
  // and has its context constraints satisfied.
  for (const SessionId& session : rbac.db().SessionIds()) {
    auto info = rbac.db().GetSession(session);
    ASSERT_TRUE(info.ok());
    for (const RoleName& role : (*info)->active_roles) {
      ASSERT_TRUE(rbac.IsAuthorized((*info)->user, role))
          << "step " << step << ": " << (*info)->user
          << " active in unauthorized role " << role;
      ASSERT_TRUE(engine.role_state().IsEnabled(role))
          << "step " << step << ": disabled role " << role << " active";
      auto spec = policy.roles().find(role);
      if (spec != policy.roles().end()) {
        ASSERT_TRUE(engine.ContextSatisfied(spec->second.required_context))
            << "step " << step << ": context-broken role " << role
            << " still active";
      }
    }
    // I2 — every session's active set satisfies every DSD relation.
    ASSERT_TRUE(rbac.dsd().Satisfies((*info)->active_roles))
        << "step " << step << ": DSD violated in session " << session;
  }

  // I3 — every user's authorized role set satisfies every SSD relation.
  for (const UserName& user : rbac.db().users()) {
    ASSERT_TRUE(rbac.ssd().Satisfies(rbac.AuthorizedRoles(user)))
        << "step " << step << ": SSD violated for " << user;
  }

  // I4 — cardinality bounds hold.
  for (const auto& [name, spec] : policy.roles()) {
    if (spec.activation_cardinality > 0) {
      ASSERT_LE(rbac.db().ActiveSessionCount(name),
                spec.activation_cardinality)
          << "step " << step << ": cardinality exceeded on " << name;
    }
  }

  // I5 — per-user active-role caps hold.
  for (const auto& [name, spec] : policy.users()) {
    if (spec.max_active_roles > 0) {
      ASSERT_LE(engine.CountUserActiveRoles(name), spec.max_active_roles)
          << "step " << step << ": user cap exceeded for " << name;
    }
  }

  // I6 — GTRBAC: a role with an enabling window is enabled exactly when
  // the window contains the current instant.
  for (const auto& [name, spec] : policy.roles()) {
    if (spec.enabling_window.has_value()) {
      ASSERT_EQ(engine.role_state().IsEnabled(name),
                spec.enabling_window->Contains(engine.Now()))
          << "step " << step << ": enablement out of sync for " << name;
    }
  }
}

TEST_P(InvariantsTest, HoldAfterEveryRequest) {
  PolicyGenParams policy_params;
  policy_params.seed = GetParam();
  policy_params.num_roles = 25;
  policy_params.num_users = 40;
  policy_params.hierarchy_prob = 0.6;
  policy_params.ssd_sets = 3;
  policy_params.dsd_sets = 3;
  policy_params.cardinality_frac = 0.3;
  policy_params.duration_frac = 0.2;
  policy_params.shift_frac = 0.2;
  policy_params.user_cap_frac = 0.2;
  policy_params.context_frac = 0.2;
  const Policy policy = GeneratePolicy(policy_params);

  RequestGenParams request_params;
  request_params.seed = GetParam() * 31 + 7;
  request_params.num_requests = 500;
  request_params.max_advance = 4 * kHour + 1;
  // Manual enable/disable legitimately overrides a shift window until the
  // next boundary; exclude those kinds so invariant I6 (enablement ==
  // window membership) is exact. Their interplay is covered by the
  // differential and engine_temporal tests.
  request_params.mix.enable_role = 0;
  request_params.mix.disable_role = 0;
  const std::vector<Request> requests =
      RequestGenerator(policy, request_params).Generate();

  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(policy).ok());
  CheckInvariants(engine, 0);

  for (size_t i = 0; i < requests.size(); ++i) {
    const Decision decision = ApplyRequest(engine, requests[i]);
    // I7 — fail-safe: requests naming unknown principals never succeed.
    if (requests[i].user == "ghost-user" &&
        (requests[i].kind == RequestKind::kCreateSession ||
         requests[i].kind == RequestKind::kAssignUser ||
         requests[i].kind == RequestKind::kDeassignUser)) {
      ASSERT_FALSE(decision.allowed) << "ghost user allowed at " << i;
    }
    if (requests[i].role == "ghost-role" &&
        (requests[i].kind == RequestKind::kAddActiveRole ||
         requests[i].kind == RequestKind::kAssignUser ||
         requests[i].kind == RequestKind::kEnableRole)) {
      ASSERT_FALSE(decision.allowed) << "ghost role allowed at " << i;
    }
    CheckInvariants(engine, i + 1);
  }
  // No rule firings were silently dropped along the way.
  EXPECT_EQ(engine.rule_manager().dropped_firings(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvariantsTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

}  // namespace
}  // namespace sentinel
