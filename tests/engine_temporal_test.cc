#include <gtest/gtest.h>

#include "common/calendar.h"
#include "common/logging.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

class EngineTemporalTest : public ::testing::Test {
 protected:
  EngineTemporalTest() : clock_(testutil::Noon()), engine_(&clock_) {}

  void Load(const std::string& text) {
    auto policy = PolicyParser::Parse(text);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    ASSERT_TRUE(engine_.LoadPolicy(*policy).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

// ------------------------------------------------ Rule 7: durations/PLUS

TEST_F(EngineTemporalTest, RoleDurationDeactivatesAfterDelta) {
  Load(R"(
policy "dur"
role OnCall { max-activation: 2h }
user u { assign: OnCall }
)");
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "OnCall").allowed);
  engine_.AdvanceBy(2 * kHour - kSecond);
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
  engine_.AdvanceBy(kSecond);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
}

TEST_F(EngineTemporalTest, EarlyDropCancelsExpiry) {
  Load(R"(
policy "dur"
role OnCall { max-activation: 1h }
user u { assign: OnCall }
)");
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "OnCall").allowed);
  engine_.AdvanceBy(10 * kMinute);
  ASSERT_TRUE(engine_.DropActiveRole("u", "s1", "OnCall").allowed);
  // Re-activate: the new activation gets its own full hour; the original
  // expiry (would land at +1h from the first activation) must not kill it.
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "OnCall").allowed);
  engine_.AdvanceBy(55 * kMinute);  // 65min after the first activation.
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
  engine_.AdvanceBy(10 * kMinute);  // 65min after the second activation.
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
}

TEST_F(EngineTemporalTest, PerUserDurationIsSpecialized) {
  Load(R"(
policy "dur"
role R3 {}
user bob { assign: R3  duration: R3 = 30m }
user eve { assign: R3 }
)");
  ASSERT_TRUE(engine_.CreateSession("bob", "sb").allowed);
  ASSERT_TRUE(engine_.CreateSession("eve", "se").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("bob", "sb", "R3").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("eve", "se", "R3").allowed);
  engine_.AdvanceBy(31 * kMinute);
  // Bob's specialized rule fired; eve is unconstrained.
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("sb", "R3"));
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("se", "R3"));
}

TEST_F(EngineTemporalTest, TightestDurationWins) {
  Load(R"(
policy "dur"
role R { max-activation: 1h }
user bob { assign: R  duration: R = 15m }
)");
  ASSERT_TRUE(engine_.CreateSession("bob", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("bob", "s1", "R").allowed);
  engine_.AdvanceBy(16 * kMinute);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "R"));
}

TEST_F(EngineTemporalTest, SessionDeletionCancelsExpiries) {
  Load(R"(
policy "dur"
role OnCall { max-activation: 1h }
user u { assign: OnCall }
)");
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "OnCall").allowed);
  ASSERT_TRUE(engine_.DeleteSession("s1").allowed);
  // Advancing past the expiry must not touch a later same-named session.
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  engine_.AdvanceBy(50 * kMinute);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "OnCall").allowed);
  engine_.AdvanceBy(20 * kMinute);  // 70min > 1h after the first add.
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
}

// --------------------------------------------- GTRBAC shifts (enable:)

TEST_F(EngineTemporalTest, ShiftWindowEnablesAndDisables) {
  Load(R"(
policy "shift"
role DayDoctor { enable: 08:00:00 - 16:00:00 }
user dana { assign: DayDoctor }
)");
  // Loaded at noon: inside the window.
  EXPECT_TRUE(engine_.role_state().IsEnabled("DayDoctor"));
  ASSERT_TRUE(engine_.CreateSession("dana", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("dana", "s1", "DayDoctor").allowed);
  // At 16:00 the shift ends: role disabled and instance deactivated.
  engine_.AdvanceTo(MakeTime(2026, 7, 6, 16, 0, 0));
  EXPECT_FALSE(engine_.role_state().IsEnabled("DayDoctor"));
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "DayDoctor"));
  // Activation denied off shift.
  EXPECT_FALSE(engine_.AddActiveRole("dana", "s1", "DayDoctor").allowed);
  // Next morning the shift re-opens.
  engine_.AdvanceTo(MakeTime(2026, 7, 7, 8, 0, 0));
  EXPECT_TRUE(engine_.role_state().IsEnabled("DayDoctor"));
  EXPECT_TRUE(engine_.AddActiveRole("dana", "s1", "DayDoctor").allowed);
}

TEST(EngineTemporalStandaloneTest, LoadOutsideWindowStartsDisabled) {
  SimulatedClock clock(MakeTime(2026, 7, 6, 5, 0, 0));  // Before the shift.
  AuthorizationEngine engine(&clock);
  auto policy = PolicyParser::Parse(R"(
policy "shift"
role DayDoctor { enable: 08:00:00 - 16:00:00 }
user dana { assign: DayDoctor }
)");
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(engine.LoadPolicy(*policy).ok());
  EXPECT_FALSE(engine.role_state().IsEnabled("DayDoctor"));
  ASSERT_TRUE(engine.CreateSession("dana", "s1").allowed);
  EXPECT_FALSE(engine.AddActiveRole("dana", "s1", "DayDoctor").allowed);
  engine.AdvanceTo(MakeTime(2026, 7, 6, 8, 0, 0));
  EXPECT_TRUE(engine.AddActiveRole("dana", "s1", "DayDoctor").allowed);
}

// --------------------------------- Rule 6: disabling-time SoD (TSOD)

TEST_F(EngineTemporalTest, DisablingTimeSodGuardsInsideWindow) {
  Load(R"(
policy "tsod"
role Doctor {}
role Nurse {}
time-sod avail { kind: disabling  roles: Doctor, Nurse
                 window: 10:00:00 - 17:00:00 }
)");
  // Noon: inside (I,P). Disabling one role is fine...
  Decision first = engine_.DisableRole("Nurse");
  EXPECT_TRUE(first.allowed);
  EXPECT_EQ(first.rule, "TSOD.avail");
  EXPECT_FALSE(engine_.role_state().IsEnabled("Nurse"));
  // ...but the counter-role must stay up.
  Decision second = engine_.DisableRole("Doctor");
  EXPECT_FALSE(second.allowed);
  EXPECT_EQ(second.reason, "Denied as Counter-Role Already Disabled");
  EXPECT_TRUE(engine_.role_state().IsEnabled("Doctor"));
}

TEST_F(EngineTemporalTest, DisablingTimeSodFreeOutsideWindow) {
  Load(R"(
policy "tsod"
role Doctor {}
role Nurse {}
time-sod avail { kind: disabling  roles: Doctor, Nurse
                 window: 10:00:00 - 17:00:00 }
)");
  engine_.AdvanceTo(MakeTime(2026, 7, 6, 18, 0, 0));  // After hours.
  EXPECT_TRUE(engine_.DisableRole("Nurse").allowed);
  Decision second = engine_.DisableRole("Doctor");
  EXPECT_TRUE(second.allowed);
  EXPECT_EQ(second.rule, "GLOB.disable");
  EXPECT_FALSE(engine_.role_state().IsEnabled("Doctor"));
  EXPECT_FALSE(engine_.role_state().IsEnabled("Nurse"));
}

TEST_F(EngineTemporalTest, TsodWindowReopensNextDay) {
  Load(R"(
policy "tsod"
role Doctor {}
role Nurse {}
time-sod avail { kind: disabling  roles: Doctor, Nurse
                 window: 10:00:00 - 17:00:00 }
)");
  engine_.AdvanceTo(MakeTime(2026, 7, 6, 18, 0, 0));
  ASSERT_TRUE(engine_.DisableRole("Nurse").allowed);
  ASSERT_TRUE(engine_.EnableRole("Nurse").allowed);
  // Next day inside the window the guard is live again.
  engine_.AdvanceTo(MakeTime(2026, 7, 7, 11, 0, 0));
  ASSERT_TRUE(engine_.DisableRole("Nurse").allowed);
  EXPECT_FALSE(engine_.DisableRole("Doctor").allowed);
}

TEST_F(EngineTemporalTest, ReenablingCounterRoleFreesTheOther) {
  Load(R"(
policy "tsod"
role Doctor {}
role Nurse {}
time-sod avail { kind: disabling  roles: Doctor, Nurse
                 window: 10:00:00 - 17:00:00 }
)");
  ASSERT_TRUE(engine_.DisableRole("Nurse").allowed);
  ASSERT_FALSE(engine_.DisableRole("Doctor").allowed);
  ASSERT_TRUE(engine_.EnableRole("Nurse").allowed);
  EXPECT_TRUE(engine_.DisableRole("Doctor").allowed);
}

TEST_F(EngineTemporalTest, EnablingTimeSodBlocksAllEnabled) {
  Load(R"(
policy "etsod"
role A {}
role B {}
time-sod exclusive { kind: enabling  roles: A, B
                     window: 00:00:01 - 23:59:59 }
)");
  // Both start enabled (pre-existing state is not retro-checked); disable
  // both, then try to bring both up inside the window.
  ASSERT_TRUE(engine_.DisableRole("A").allowed);
  ASSERT_TRUE(engine_.DisableRole("B").allowed);
  EXPECT_TRUE(engine_.EnableRole("A").allowed);
  Decision d = engine_.EnableRole("B");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, "Denied by Enabling-Time SoD");
  EXPECT_FALSE(engine_.role_state().IsEnabled("B"));
}

// ------------------------------------------------------------- Audits

TEST_F(EngineTemporalTest, AuditRuleTicksPeriodically) {
  Load(R"(
policy "aud"
role A {}
audit hourly { interval: 1h }
)");
  engine_.AdvanceBy(3 * kHour + kMinute);
  EXPECT_EQ(engine_.security().audit_report_count("hourly"), 3);
  engine_.AdvanceBy(kHour);
  EXPECT_EQ(engine_.security().audit_report_count("hourly"), 4);
}

TEST_F(EngineTemporalTest, ManyTimerFiringsDoNotExhaustCascadeBudget) {
  // Regression: each timer firing is an independent trigger and must get
  // a fresh cascade budget; a long advance over thousands of shift
  // boundaries must not silently drop rule firings.
  Load(R"(
policy "shift"
role DayDoctor { enable: 08:00:00 - 16:00:00 }
user dana { assign: DayDoctor }
)");
  engine_.AdvanceBy(800 * kDay);  // 1600 boundary firings > default 1024.
  EXPECT_EQ(engine_.rule_manager().dropped_firings(), 0u);
  // State still tracks the window (noon + 800d is noon: enabled).
  EXPECT_TRUE(engine_.role_state().IsEnabled("DayDoctor"));
  engine_.AdvanceTo(engine_.Now() + 5 * kHour);  // 17:00: disabled.
  EXPECT_FALSE(engine_.role_state().IsEnabled("DayDoctor"));
}

TEST_F(EngineTemporalTest, ThresholdWindowSlidesWithTime) {
  Load(R"(
policy "sec"
role A { permission: read(x) }
user u { assign: A }
threshold guard { count: 3  window: 60s }
)");
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  engine_.AdvanceBy(2 * kMinute);  // The burst ages out.
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  EXPECT_EQ(engine_.security().alert_count(), 0);
  // A dense burst alerts.
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  EXPECT_EQ(engine_.security().alert_count(), 1);
}

}  // namespace
}  // namespace sentinel
