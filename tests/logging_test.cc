#include "common/logging.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

TEST(LoggingTest, CapturingSinkRecordsMessages) {
  CapturingLogSink sink;
  SENTINEL_LOG(kInfo) << "hello " << 42;
  ASSERT_EQ(sink.entries().size(), 1u);
  EXPECT_EQ(sink.entries()[0].level, LogLevel::kInfo);
  EXPECT_EQ(sink.entries()[0].message, "hello 42");
}

TEST(LoggingTest, MinLevelFilters) {
  CapturingLogSink sink(LogLevel::kWarning);
  SENTINEL_LOG(kDebug) << "quiet";
  SENTINEL_LOG(kInfo) << "quiet too";
  SENTINEL_LOG(kWarning) << "loud";
  SENTINEL_LOG(kAlert) << "alarm";
  EXPECT_EQ(sink.entries().size(), 2u);
  EXPECT_EQ(sink.CountAt(LogLevel::kAlert), 1);
  EXPECT_EQ(sink.CountAt(LogLevel::kWarning), 1);
}

TEST(LoggingTest, ContainsSearchesAllEntries) {
  CapturingLogSink sink;
  SENTINEL_LOG(kError) << "first message";
  SENTINEL_LOG(kAlert) << "internal security alert [guard]";
  EXPECT_TRUE(sink.Contains("security alert"));
  EXPECT_FALSE(sink.Contains("missing"));
}

TEST(LoggingTest, SinkRestoredAfterScope) {
  {
    CapturingLogSink inner;
    SENTINEL_LOG(kError) << "captured";
    EXPECT_EQ(inner.entries().size(), 1u);
  }
  // No crash writing to the default sink afterwards; level restored.
  EXPECT_EQ(Logger::Global().min_level(), LogLevel::kWarning);
}

TEST(LoggingTest, LevelNames) {
  EXPECT_STREQ(LogLevelToString(LogLevel::kDebug), "DEBUG");
  EXPECT_STREQ(LogLevelToString(LogLevel::kAlert), "ALERT");
}

}  // namespace
}  // namespace sentinel
