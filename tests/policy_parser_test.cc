#include "core/policy_parser.h"

#include <limits>
#include <string>

#include <gtest/gtest.h>

#include "common/calendar.h"
#include "common/rng.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"

namespace sentinel {
namespace {

TEST(PolicyParserTest, ParsesEnterpriseXyz) {
  const Policy policy = testutil::EnterpriseXyzPolicy();
  EXPECT_EQ(policy.name(), "enterprise-xyz");
  EXPECT_EQ(policy.roles().size(), 5u);
  EXPECT_EQ(policy.users().size(), 3u);
  EXPECT_EQ(policy.roles().at("PM").juniors, (std::set<RoleName>{"PC"}));
  EXPECT_EQ(policy.ssd_sets().at("SoD1").roles,
            (std::set<RoleName>{"PC", "AC"}));
  EXPECT_EQ(policy.ssd_sets().at("SoD1").n, 2);
  EXPECT_EQ(policy.users().at("alice").assignments,
            (std::set<RoleName>{"PM"}));
  EXPECT_EQ(policy.roles().at("PC").permissions.count(
                Permission{"write", "purchase-order"}),
            1u);
}

TEST(PolicyParserTest, ParsesHospitalTemporalFeatures) {
  const Policy policy = testutil::HospitalPolicy();
  const RoleSpec& day_doctor = policy.roles().at("DayDoctor");
  ASSERT_TRUE(day_doctor.enabling_window.has_value());
  EXPECT_TRUE(
      day_doctor.enabling_window->Contains(MakeTime(2026, 7, 6, 12, 0, 0)));
  EXPECT_FALSE(
      day_doctor.enabling_window->Contains(MakeTime(2026, 7, 6, 5, 0, 0)));
  EXPECT_EQ(policy.roles().at("OnCall").max_activation, 2 * kHour);
  ASSERT_EQ(policy.time_sods().size(), 1u);
  const TimeSod& tsod = policy.time_sods()[0];
  EXPECT_EQ(tsod.kind, TimeSodKind::kDisabling);
  EXPECT_EQ(tsod.roles, (std::set<RoleName>{"Doctor", "Nurse"}));
}

TEST(PolicyParserTest, ParsesAllDirectiveKinds) {
  const char* text = R"(
policy "full"
role A { cardinality: 3 }
role B { prerequisite: A }
role SysAdmin {}
role SysAudit {}
role Manager {}
role JuniorEmp {}
user u { assign: A  max-active: 2  duration: A = 45m }
dsd D1 { roles: A, B  n: 2 }
cfd { trigger: SysAdmin  companion: SysAudit }
transaction tx { controller: Manager  dependent: JuniorEmp }
threshold guard { count: 7  window: 90s  disable: CA, AAR }
audit nightly { interval: 12h }
purpose business {}
purpose marketing { parent: business }
object-policy crm.dat { purposes: marketing }
)";
  auto policy = PolicyParser::Parse(text);
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  EXPECT_EQ(policy->roles().at("A").activation_cardinality, 3);
  EXPECT_EQ(policy->roles().at("B").prerequisites,
            (std::set<RoleName>{"A"}));
  EXPECT_EQ(policy->users().at("u").max_active_roles, 2);
  EXPECT_EQ(policy->users().at("u").role_durations.at("A"), 45 * kMinute);
  EXPECT_EQ(policy->dsd_sets().size(), 1u);
  ASSERT_EQ(policy->cfd_pairs().size(), 1u);
  EXPECT_EQ(policy->cfd_pairs()[0].trigger, "SysAdmin");
  ASSERT_EQ(policy->transactions().size(), 1u);
  EXPECT_EQ(policy->transactions()[0].controller, "Manager");
  ASSERT_EQ(policy->thresholds().size(), 1u);
  EXPECT_EQ(policy->thresholds()[0].threshold, 7);
  EXPECT_EQ(policy->thresholds()[0].window, 90 * kSecond);
  EXPECT_EQ(policy->thresholds()[0].disable_rule_prefixes,
            (std::vector<std::string>{"CA", "AAR"}));
  ASSERT_EQ(policy->audits().size(), 1u);
  EXPECT_EQ(policy->audits()[0].interval, 12 * kHour);
  EXPECT_EQ(policy->purposes().size(), 2u);
  ASSERT_EQ(policy->object_policies().size(), 1u);
  EXPECT_EQ(policy->object_policies()[0].purposes,
            (std::set<PurposeName>{"marketing"}));
}

TEST(PolicyParserTest, CommentsAndBlankLinesIgnored) {
  const char* text = R"(
# leading comment
policy "p"   # trailing comment

role A {
  # inside block
  cardinality: 2
}
)";
  auto policy = PolicyParser::Parse(text);
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->roles().at("A").activation_cardinality, 2);
}

TEST(PolicyParserTest, OneLineBlocks) {
  auto policy = PolicyParser::Parse(
      "policy \"p\"\nrole A {}\nrole B { senior-of: A }\n");
  ASSERT_TRUE(policy.ok());
  EXPECT_EQ(policy->roles().at("B").juniors, (std::set<RoleName>{"A"}));
}

TEST(PolicyParserTest, DurationLiterals) {
  EXPECT_EQ(*PolicyParser::ParseDuration("30s"), 30 * kSecond);
  EXPECT_EQ(*PolicyParser::ParseDuration("45"), 45 * kSecond);
  EXPECT_EQ(*PolicyParser::ParseDuration("5m"), 5 * kMinute);
  EXPECT_EQ(*PolicyParser::ParseDuration("5min"), 5 * kMinute);
  EXPECT_EQ(*PolicyParser::ParseDuration("2h"), 2 * kHour);
  EXPECT_EQ(*PolicyParser::ParseDuration("1d"), kDay);
  EXPECT_EQ(*PolicyParser::ParseDuration("250ms"), 250 * kMillisecond);
  EXPECT_EQ(*PolicyParser::ParseDuration("10us"), 10 * kMicrosecond);
  EXPECT_FALSE(PolicyParser::ParseDuration("").ok());
  EXPECT_FALSE(PolicyParser::ParseDuration("abc").ok());
  EXPECT_FALSE(PolicyParser::ParseDuration("10y").ok());
}

TEST(PolicyParserTest, DurationOverflowIsAParseErrorNotUndefinedBehavior) {
  // 1e11 days of microseconds overflows int64; the suffix multiply must be
  // guarded, not left as signed-overflow UB yielding a garbage duration.
  auto huge = PolicyParser::ParseDuration("100000000000d");
  ASSERT_FALSE(huge.ok());
  EXPECT_NE(huge.status().message().find("too large"), std::string::npos);
  EXPECT_FALSE(PolicyParser::ParseDuration("9223372036854775807s").ok());
  // The largest representable whole-day duration still parses.
  constexpr Duration kMaxDays =
      std::numeric_limits<Duration>::max() / kDay;  // ~106M days.
  auto big_ok = PolicyParser::ParseDuration(std::to_string(kMaxDays) + "d");
  ASSERT_TRUE(big_ok.ok());
  EXPECT_EQ(*big_ok, kMaxDays * kDay);
}

TEST(PolicyParserTest, ErrorsCarryLineNumbers) {
  auto bad = PolicyParser::Parse("policy \"p\"\nrole A {\n  nonsense\n}\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("line 3"), std::string::npos);
}

TEST(PolicyParserTest, UnterminatedBlockRejected) {
  auto bad = PolicyParser::Parse("policy \"p\"\nrole A {\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unterminated"), std::string::npos);
}

TEST(PolicyParserTest, UnknownBlockKindRejected) {
  auto bad = PolicyParser::Parse("policy \"p\"\nwidget W {}\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.status().message().find("unknown block kind"),
            std::string::npos);
}

TEST(PolicyParserTest, ValidationFailuresSurfaceAsParseErrors) {
  auto bad = PolicyParser::Parse(
      "policy \"p\"\nrole A { senior-of: Ghost }\n");
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsParseError());
}

TEST(PolicyParserTest, RoundTripThroughText) {
  const Policy original = testutil::EnterpriseXyzPolicy();
  const std::string text = PolicyToText(original);
  auto reparsed = PolicyParser::Parse(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString() << "\n" << text;
  EXPECT_EQ(*reparsed, original);
}

TEST(PolicyParserTest, RoundTripHospital) {
  const Policy original = testutil::HospitalPolicy();
  auto reparsed = PolicyParser::Parse(PolicyToText(original));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(*reparsed, original);
}

TEST(PolicyParserTest, ContextConstraintsParse) {
  auto policy = PolicyParser::Parse(R"(
policy "ctx"
role WardNurse { context: location = hospital  context: network = secure }
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  const auto& required = policy->roles().at("WardNurse").required_context;
  ASSERT_EQ(required.size(), 2u);
  EXPECT_EQ(required.at("location"), "hospital");
  EXPECT_EQ(required.at("network"), "secure");
  EXPECT_FALSE(
      PolicyParser::Parse("policy \"p\"\nrole A { context: nonsense }\n")
          .ok());
}

TEST(PolicyParserPropertyTest, RandomPoliciesRoundTripThroughText) {
  for (uint64_t seed : {1u, 9u, 77u, 2048u}) {
    PolicyGenParams params;
    params.seed = seed;
    params.num_roles = 30;
    params.num_users = 20;
    params.cardinality_frac = 0.4;
    params.duration_frac = 0.4;
    params.shift_frac = 0.4;
    params.context_frac = 0.4;
    params.user_cap_frac = 0.4;
    const Policy original = GeneratePolicy(params);
    const std::string text = PolicyToText(original);
    auto reparsed = PolicyParser::Parse(text);
    ASSERT_TRUE(reparsed.ok())
        << "seed " << seed << ": " << reparsed.status().ToString();
    EXPECT_EQ(*reparsed, original) << "seed " << seed;
  }
}

// Robustness: random token soup must never crash the parser — every input
// either parses or returns a ParseError.
TEST(PolicyParserPropertyTest, RandomGarbageNeverCrashes) {
  Rng rng(31337);
  const char* tokens[] = {"policy", "role",  "user",   "{",      "}",
                          ":",      ",",     "\"x\"",  "ssd",    "dsd",
                          "enable", "08:00", "-",      "n",      "2",
                          "#",      "\n",    "assign", "senior-of",
                          "cardinality",     "context", "=",     "30m",
                          "threshold",       "window",  "roles", "A"};
  constexpr size_t kTokenCount = sizeof(tokens) / sizeof(tokens[0]);
  for (int round = 0; round < 500; ++round) {
    std::string soup;
    const int length = static_cast<int>(rng.NextBounded(60));
    for (int i = 0; i < length; ++i) {
      soup += tokens[rng.NextBounded(kTokenCount)];
      soup += rng.NextBool(0.7) ? " " : "";
      if (rng.NextBool(0.2)) soup += "\n";
    }
    auto result = PolicyParser::Parse(soup);
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError()) << soup;
    }
  }
}

// Robustness: truncating a valid policy at every byte offset must never
// crash; prefixes either parse or produce a ParseError.
TEST(PolicyParserPropertyTest, AllPrefixesOfValidPolicyAreSafe) {
  const std::string text = PolicyToText(testutil::HospitalPolicy());
  for (size_t cut = 0; cut <= text.size(); cut += 7) {
    auto result = PolicyParser::Parse(text.substr(0, cut));
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsParseError());
    }
  }
}

TEST(PolicyParserTest, MissingFileReported) {
  EXPECT_TRUE(PolicyParser::ParseFile("/no/such/file.acp")
                  .status()
                  .IsNotFound());
}

}  // namespace
}  // namespace sentinel
