// Pauseless policy swap semantics (PR 9).
//
// The contract under test, end to end:
//   * an in-flight envelope sees entirely-old or entirely-new generation,
//     never a mix (commits are ordinary envelopes on a single shard thread);
//   * cache/fast-path entries filled under generation N never answer under
//     generation N+1 (the rule-pool generation rides every verdict stamp);
//   * a builder failure is loud and leaves the old generation serving;
//   * back-to-back updates serialize without losing either;
//   * a stale plan (prepared against a retired generation) is refused.

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/engine.h"
#include "core/policy_parser.h"
#include "core/policy_update.h"
#include "service/authorization_service.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

Policy ParsePolicy(const char* text) {
  auto policy = PolicyParser::Parse(text);
  EXPECT_TRUE(policy.ok()) << policy.status().message();
  return *policy;
}

/// Worker holds both probe permissions; the "swapped" twin holds neither.
/// Swapping between the two flips BOTH verdicts in one generation — the
/// handle the atomicity test grips.
Policy BothGrantsPolicy() {
  return ParsePolicy(R"(
policy "swaplab"

role Worker { permission: read(chart), read(lab) }

user alice { assign: Worker }
)");
}

Policy NoGrantsPolicy() {
  return ParsePolicy(R"(
policy "swaplab"

role Worker { permission: write(nothing) }

user alice { assign: Worker }
)");
}

AccessRequest Req(const std::string& op, const std::string& obj) {
  AccessRequest request;
  request.user = "alice";
  request.session = "s1";
  request.operation = op;
  request.object = obj;
  return request;
}

std::unique_ptr<AuthorizationService> StartService(int shards, bool fastpath) {
  ServiceConfig config;
  config.num_shards = shards;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 256;
  config.decision_cache_fastpath = fastpath;
  auto service_or = AuthorizationService::Create(config);
  EXPECT_TRUE(service_or.ok()) << service_or.status().message();
  std::unique_ptr<AuthorizationService> service = std::move(*service_or);
  EXPECT_TRUE(service->LoadPolicy(BothGrantsPolicy()).ok());
  EXPECT_TRUE(service->CreateSession("alice", "s1").ok());
  EXPECT_TRUE(service->AddActiveRole("alice", "s1", "Worker").ok());
  return service;
}

// ----------------------------------------------------- Envelope atomicity

/// One single-user batch is one mailbox envelope on the home shard; a swap
/// commit is another envelope on the same thread. Whatever the
/// interleaving, every batch must decide ALL its items under one
/// generation: all-allow (BothGrants) or all-deny (NoGrants) — a mixed
/// batch means a commit tore an envelope in half. Fast path off: only the
/// envelope path carries the atomicity guarantee.
TEST(PolicySwapTest, InFlightEnvelopeSeesOneGeneration) {
  auto service = StartService(/*shards=*/2, /*fastpath=*/false);
  const Policy with = BothGrantsPolicy();
  const Policy without = NoGrantsPolicy();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> swaps{0};
  std::thread churn([&] {
    bool grant = false;
    while (!stop.load(std::memory_order_acquire)) {
      const auto report = service->ApplyPolicyUpdate(grant ? with : without);
      ASSERT_TRUE(report.ok()) << report.status();
      grant = !grant;
      swaps.fetch_add(1, std::memory_order_relaxed);
    }
  });

  std::vector<AccessRequest> batch;
  for (int i = 0; i < 4; ++i) {
    batch.push_back(Req("read", "chart"));
    batch.push_back(Req("read", "lab"));
  }
  int mixed = 0;
  for (int round = 0; round < 400; ++round) {
    const std::vector<AccessDecision> verdicts =
        service->CheckAccessBatch(batch);
    ASSERT_EQ(verdicts.size(), batch.size());
    bool any_allowed = false, any_denied = false;
    for (const AccessDecision& verdict : verdicts) {
      ASSERT_EQ(verdict.outcome, AccessOutcome::kDecided);
      (verdict.allowed ? any_allowed : any_denied) = true;
    }
    if (any_allowed && any_denied) ++mixed;
  }
  stop.store(true, std::memory_order_release);
  churn.join();
  EXPECT_EQ(mixed, 0) << "a swap tore an envelope across generations";
  // The race is vacuous if the churn thread never actually interleaved.
  EXPECT_GE(swaps.load(), 8u);
  EXPECT_EQ(service->Stats().policy_swaps, swaps.load());
}

// ------------------------------------------- Cross-generation staleness

/// Entries filled under generation N must never answer under N+1 — the
/// swap bumps the rule-pool generation, which every cached verdict stamp
/// (and the published fast stamp) carries.
TEST(PolicySwapTest, WarmCacheEntriesDieAtTheSwap) {
  for (const bool fastpath : {false, true}) {
    SCOPED_TRACE(fastpath ? "fastpath" : "mailbox cache");
    auto service = StartService(/*shards=*/2, fastpath);
    // Warm: dispatch + fill, then a replay that rides the cache.
    EXPECT_TRUE(service->CheckAccess(Req("read", "chart")).allowed);
    EXPECT_TRUE(service->CheckAccess(Req("read", "chart")).allowed);

    auto report = service->ApplyPolicyUpdate(NoGrantsPolicy());
    ASSERT_TRUE(report.ok()) << report.status();
    // The very next request must see the new generation, not the warm fill.
    EXPECT_FALSE(service->CheckAccess(Req("read", "chart")).allowed);

    // And back: the deny fill must die at the next swap too.
    ASSERT_TRUE(service->ApplyPolicyUpdate(BothGrantsPolicy()).ok());
    EXPECT_TRUE(service->CheckAccess(Req("read", "chart")).allowed);
  }
}

// ------------------------------------------------- Builder failure is loud

TEST(PolicySwapTest, BuilderFailureRollsBackLoudly) {
  auto service = StartService(/*shards=*/2, /*fastpath=*/false);
  EXPECT_TRUE(service->CheckAccess(Req("read", "chart")).allowed);

  // A dangling junior fails Policy::Validate at Prepare — before any shard
  // mutates anything.
  Policy invalid = BothGrantsPolicy();
  auto worker = invalid.MutableRole("Worker");
  ASSERT_TRUE(worker.ok());
  (*worker)->juniors.insert("NoSuchRole");
  const auto report = service->ApplyPolicyUpdate(invalid);
  ASSERT_FALSE(report.ok());

  const ServiceStats stats = service->Stats();
  EXPECT_EQ(stats.policy_swaps, 0u);
  EXPECT_EQ(stats.policy_swap_failures, 1u);
  // The old generation keeps serving, undisturbed.
  EXPECT_TRUE(service->CheckAccess(Req("read", "chart")).allowed);
  for (int shard = 0; shard < service->num_shards(); ++shard) {
    service->Inspect(static_cast<uint32_t>(shard),
                     [&](const AuthorizationEngine& engine) {
                       EXPECT_FALSE(engine.policy()
                                        .roles()
                                        .at("Worker")
                                        .juniors.count("NoSuchRole"));
                     });
  }
}

// --------------------------------------------- Back-to-back serialization

TEST(PolicySwapTest, BackToBackUpdatesLandBothGenerations) {
  auto service = StartService(/*shards=*/2, /*fastpath=*/false);

  Policy first = BothGrantsPolicy();
  {
    auto worker = first.MutableRole("Worker");
    ASSERT_TRUE(worker.ok());
    (*worker)->permissions.insert(Permission{"read", "scan"});
  }
  Policy second = first;
  {
    auto worker = second.MutableRole("Worker");
    ASSERT_TRUE(worker.ok());
    (*worker)->permissions.insert(Permission{"read", "archive"});
  }

  // Two threads race their updates; update_mu_ serializes them, and the
  // second to run is prepared against the first one's generation — neither
  // edit may be lost. (Which "wins" the race is irrelevant: `second` is a
  // superset of `first`, so scan must survive either order.)
  std::thread a([&] { ASSERT_TRUE(service->ApplyPolicyUpdate(first).ok()); });
  std::thread b([&] { ASSERT_TRUE(service->ApplyPolicyUpdate(second).ok()); });
  a.join();
  b.join();
  ASSERT_TRUE(service->ApplyPolicyUpdate(second).ok());

  EXPECT_TRUE(service->CheckAccess(Req("read", "scan")).allowed);
  EXPECT_TRUE(service->CheckAccess(Req("read", "archive")).allowed);
  EXPECT_EQ(service->Stats().policy_swaps, 3u);
  EXPECT_EQ(service->Stats().policy_swap_failures, 0u);

  // Every shard serves the SAME generation object at the same version.
  const Policy* seen = nullptr;
  uint64_t version = 0;
  for (int shard = 0; shard < service->num_shards(); ++shard) {
    service->Inspect(static_cast<uint32_t>(shard),
                     [&](const AuthorizationEngine& engine) {
                       if (seen == nullptr) {
                         seen = engine.policy_generation().get();
                         version = engine.policy_version();
                       } else {
                         EXPECT_EQ(engine.policy_generation().get(), seen);
                         EXPECT_EQ(engine.policy_version(), version);
                       }
                     });
  }
  EXPECT_EQ(service->current_policy().get(), seen);
}

// -------------------------------------------------- Stale plans (engine)

/// Two plans prepared against the same base: the first commit flips the
/// generation, so the second must be refused — not silently applied over
/// a world it never diffed against.
TEST(PolicySwapTest, StalePlanIsRefusedAtCommit) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(
      engine.LoadPolicy(std::make_shared<const Policy>(BothGrantsPolicy()))
          .ok());
  const std::shared_ptr<const Policy> base = engine.policy_generation();

  Policy next_a = BothGrantsPolicy();
  {
    auto worker = next_a.MutableRole("Worker");
    ASSERT_TRUE(worker.ok());
    (*worker)->permissions.insert(Permission{"read", "scan"});
  }
  auto plan_a = AuthorizationEngine::PreparePolicyUpdate(base, next_a);
  ASSERT_TRUE(plan_a.ok()) << plan_a.status();
  auto plan_b = AuthorizationEngine::PreparePolicyUpdate(base, NoGrantsPolicy());
  ASSERT_TRUE(plan_b.ok()) << plan_b.status();

  const uint64_t version_before = engine.policy_version();
  ASSERT_TRUE(engine.CommitPolicyUpdate(*plan_a).ok());
  EXPECT_EQ(engine.policy_version(), version_before + 1);

  const auto stale = engine.CommitPolicyUpdate(*plan_b);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  // The refused plan changed nothing: plan_a's generation still serves.
  EXPECT_EQ(engine.policy_generation().get(), plan_a->next.get());
  EXPECT_EQ(engine.policy_version(), version_before + 1);
  EXPECT_TRUE(
      engine.policy().roles().at("Worker").permissions.count(
          Permission{"read", "scan"}));
}

/// The pool generation moves on every commit even when no rule text
/// changed — the stamp component that retires warm verdicts.
TEST(PolicySwapTest, CommitAlwaysAdvancesThePoolGeneration) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(BothGrantsPolicy()).ok());
  const uint64_t pool_before = engine.rule_manager().pool_generation();
  const uint64_t epoch_before = engine.decision_cache_epoch();

  Policy next = BothGrantsPolicy();
  {
    auto worker = next.MutableRole("Worker");
    ASSERT_TRUE(worker.ok());
    (*worker)->permissions.insert(Permission{"read", "scan"});
  }
  auto plan = AuthorizationEngine::PreparePolicyUpdate(
      engine.policy_generation(), next);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(engine.CommitPolicyUpdate(*plan).ok());
  EXPECT_GT(engine.rule_manager().pool_generation(), pool_before);
  // No blanket cache wipe: the epoch is the barrier's tool, not the swap's.
  EXPECT_EQ(engine.decision_cache_epoch(), epoch_before);
}

}  // namespace
}  // namespace sentinel
