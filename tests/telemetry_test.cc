#include "telemetry/metrics.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.h"
#include "core/report.h"
#include "telemetry/exposition.h"
#include "telemetry/reporter.h"
#include "telemetry/trace.h"
#include "tests/test_util.h"

namespace sentinel {
namespace telemetry {
namespace {

// ----------------------------------------------------------------- Counters

TEST(CounterTest, IncAndAddAccumulate) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(4);
  c.Add(5);
  EXPECT_EQ(c.value(), 10u);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(7);
  g.Add(-3);
  EXPECT_EQ(g.value(), 4);
}

// --------------------------------------------------------------- Histograms

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  Histogram h({10, 20, 40});
  h.Record(-5);  // Underflow bucket (everything <= 10, however negative).
  h.Record(10);  // Exactly on a bound: belongs to that bound's bucket.
  h.Record(11);  // First value past the bound: next bucket.
  h.Record(20);
  h.Record(40);
  h.Record(41);   // > last bound: overflow.
  h.Record(999);  // Overflow too.
  const HistogramSnapshot snap = h.Snapshot();
  ASSERT_EQ(snap.counts.size(), 4u);  // bounds + overflow.
  EXPECT_EQ(snap.counts[0], 2u);      // -5, 10.
  EXPECT_EQ(snap.counts[1], 2u);      // 11, 20.
  EXPECT_EQ(snap.counts[2], 1u);      // 40.
  EXPECT_EQ(snap.counts[3], 2u);      // 41, 999.
  EXPECT_EQ(snap.TotalCount(), 7u);
  EXPECT_EQ(snap.sum, -5 + 10 + 11 + 20 + 40 + 41 + 999);
}

TEST(HistogramTest, ExponentialBoundsDoubleAndDeduplicate) {
  EXPECT_EQ(Histogram::ExponentialBounds(1, 2.0, 5),
            (std::vector<int64_t>{1, 2, 4, 8, 16}));
  // A factor that rounds to the same integer must not produce duplicates.
  const std::vector<int64_t> slow = Histogram::ExponentialBounds(1, 1.2, 6);
  for (size_t i = 1; i < slow.size(); ++i) EXPECT_GT(slow[i], slow[i - 1]);
}

TEST(HistogramSnapshotTest, MergeIsCommutativeAndAssociative) {
  Histogram a({1, 2, 4}), b({1, 2, 4}), c({1, 2, 4});
  a.Record(1);
  b.Record(2);
  b.Record(100);
  c.Record(3);

  // (a + b) + c.
  HistogramSnapshot left = a.Snapshot();
  ASSERT_TRUE(left.MergeFrom(b.Snapshot()));
  ASSERT_TRUE(left.MergeFrom(c.Snapshot()));
  // c + (b + a).
  HistogramSnapshot inner = b.Snapshot();
  ASSERT_TRUE(inner.MergeFrom(a.Snapshot()));
  HistogramSnapshot right = c.Snapshot();
  ASSERT_TRUE(right.MergeFrom(inner));

  EXPECT_EQ(left.counts, right.counts);
  EXPECT_EQ(left.sum, right.sum);
  EXPECT_EQ(left.TotalCount(), 4u);
}

TEST(HistogramSnapshotTest, MergeRejectsLayoutMismatch) {
  Histogram a({1, 2}), b({1, 3});
  a.Record(1);
  b.Record(1);
  HistogramSnapshot snap = a.Snapshot();
  const HistogramSnapshot before = snap;
  EXPECT_FALSE(snap.MergeFrom(b.Snapshot()));
  EXPECT_EQ(snap.counts, before.counts);  // Untouched on rejection.
  EXPECT_EQ(snap.sum, before.sum);
}

TEST(HistogramSnapshotTest, PercentilesInterpolateAndClamp) {
  Histogram h({10, 20, 30});
  for (int i = 0; i < 10; ++i) h.Record(5);   // Bucket (0, 10].
  for (int i = 0; i < 10; ++i) h.Record(15);  // Bucket (10, 20].
  const HistogramSnapshot snap = h.Snapshot();
  // p50: rank 10 closes out the first bucket exactly -> its upper edge.
  EXPECT_DOUBLE_EQ(snap.Percentile(50), 10.0);
  EXPECT_DOUBLE_EQ(snap.Percentile(100), 20.0);
  EXPECT_LE(snap.Percentile(25), 10.0);
  EXPECT_GT(snap.Percentile(75), 10.0);

  Histogram empty({10});
  EXPECT_DOUBLE_EQ(empty.Snapshot().Percentile(99), 0.0);

  Histogram over({10});
  over.Record(500);  // Only the overflow bucket: clamps to the last bound.
  EXPECT_DOUBLE_EQ(over.Snapshot().Percentile(99), 10.0);
}

// ----------------------------------------------------------------- Registry

TEST(RegistryTest, RegistrationIsIdempotentAndSnapshotsCopy) {
  Registry registry;
  Counter* c1 = registry.AddCounter("reqs", "requests");
  Counter* c2 = registry.AddCounter("reqs", "requests");
  EXPECT_EQ(c1, c2);  // Same series, same instrument.
  c1->Inc(3);
  registry.AddGauge("depth", "queue depth")->Set(9);
  registry.AddHistogram("lat", "latency", {1, 2})->Record(2);

  const RegistrySnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("reqs"), nullptr);
  EXPECT_EQ(snap.FindCounter("reqs")->value, 3u);
  ASSERT_NE(snap.FindGauge("depth"), nullptr);
  EXPECT_EQ(snap.FindGauge("depth")->value, 9);
  ASSERT_NE(snap.FindHistogram("lat"), nullptr);
  EXPECT_EQ(snap.FindHistogram("lat")->TotalCount(), 1u);
  EXPECT_EQ(snap.FindCounter("nope"), nullptr);
}

TEST(RegistrySnapshotTest, MergeSumsByNameAndAppendsUnknownSeries) {
  Registry a, b;
  a.AddCounter("shared", "")->Inc(1);
  b.AddCounter("shared", "")->Inc(2);
  b.AddCounter("only-b", "")->Inc(5);
  a.AddGauge("g", "")->Set(10);
  b.AddGauge("g", "")->Set(4);  // Gauges sum across shards.
  a.AddHistogram("h", "", {1, 2})->Record(1);
  b.AddHistogram("h", "", {1, 2})->Record(2);

  RegistrySnapshot merged = a.Snapshot();
  merged.MergeFrom(b.Snapshot());
  EXPECT_EQ(merged.FindCounter("shared")->value, 3u);
  EXPECT_EQ(merged.FindCounter("only-b")->value, 5u);
  EXPECT_EQ(merged.FindGauge("g")->value, 14);
  EXPECT_EQ(merged.FindHistogram("h")->TotalCount(), 2u);
}

// --------------------------------------------------------------- Exposition

TEST(ExpositionTest, PrometheusTextHasCumulativeBucketsAndPreambles) {
  Registry registry;
  registry.AddCounter("reqs", "requests served")->Inc(7);
  Histogram* h = registry.AddHistogram("lat", "latency", {1, 2});
  h->Record(1);
  h->Record(2);
  h->Record(50);
  const std::string text = RenderPrometheus(registry.Snapshot());
  EXPECT_NE(text.find("# HELP sentinelpp_reqs requests served\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE sentinelpp_reqs counter\n"), std::string::npos);
  EXPECT_NE(text.find("sentinelpp_reqs 7\n"), std::string::npos);
  // Buckets are cumulative: le="2" includes the le="1" observation.
  EXPECT_NE(text.find("sentinelpp_lat_bucket{le=\"1\"} 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("sentinelpp_lat_bucket{le=\"2\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("sentinelpp_lat_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(text.find("sentinelpp_lat_sum 53\n"), std::string::npos);
  EXPECT_NE(text.find("sentinelpp_lat_count 3\n"), std::string::npos);
}

TEST(ExpositionTest, JsonRoundsTheSnapshotIntoOneDocument) {
  Registry registry;
  registry.AddCounter("c", "help")->Inc(2);
  registry.AddGauge("g", "help")->Set(-1);
  registry.AddHistogram("h", "help", {5})->Record(3);
  const std::string json = RenderJson(registry.Snapshot());
  EXPECT_NE(json.find("\"c\":2"), std::string::npos);
  EXPECT_NE(json.find("\"g\":-1"), std::string::npos);
  EXPECT_NE(json.find("\"bounds\":[5]"), std::string::npos);
  EXPECT_NE(json.find("\"counts\":[1,0]"), std::string::npos);
}

// -------------------------------------------------------------------- Trace

TEST(TraceCollectorTest, FirstRequestAlwaysSampledThenEveryNth) {
  TraceCollector::Options options;
  options.sample_every = 4;
  TraceCollector tracer(options);
  int sampled = 0;
  for (int i = 0; i < 8; ++i) {
    if (tracer.Begin(0, "op")) {
      ++sampled;
      tracer.End(true, "R", 0);
    }
  }
  EXPECT_EQ(sampled, 2);  // Requests 0 and 4.
  EXPECT_EQ(tracer.requests_seen(), 8u);
  EXPECT_EQ(tracer.spans_recorded(), 2u);
}

TEST(TraceCollectorTest, ZeroSamplingDisablesTracing) {
  TraceCollector::Options options;
  options.sample_every = 0;
  TraceCollector tracer(options);
  EXPECT_FALSE(tracer.Begin(0, "op"));
  EXPECT_FALSE(tracer.active());
}

TEST(TraceCollectorTest, NestedBeginAttachesToOuterSpan) {
  TraceCollector::Options options;
  options.sample_every = 1;
  TraceCollector tracer(options);
  ASSERT_TRUE(tracer.Begin(0, "outer"));
  EXPECT_FALSE(tracer.Begin(0, "inner"));  // Cascade re-entry.
  tracer.AddEventStep("e1");
  tracer.End(true, "R", 10);
  const std::vector<DecisionSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].operation, "outer");
}

TEST(TraceCollectorTest, RingEvictsOldestAndSpansReturnOldestFirst) {
  TraceCollector::Options options;
  options.sample_every = 1;
  options.capacity = 3;
  TraceCollector tracer(options);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(tracer.Begin(i, "op" + std::to_string(i)));
    tracer.End(true, "R", 0);
  }
  const std::vector<DecisionSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 3u);
  EXPECT_EQ(spans[0].operation, "op2");
  EXPECT_EQ(spans[1].operation, "op3");
  EXPECT_EQ(spans[2].operation, "op4");
  EXPECT_EQ(tracer.spans_recorded(), 5u);
}

TEST(TraceCollectorTest, StepsPastMaxAreCountedNotStored) {
  TraceCollector::Options options;
  options.sample_every = 1;
  options.max_steps = 2;
  TraceCollector tracer(options);
  ASSERT_TRUE(tracer.Begin(0, "op"));
  tracer.AddEventStep("e1");
  tracer.AddRuleStep("r1", 5, false, "administrative", "specialized");
  tracer.AddEventStep("e2");
  tracer.AddRuleStep("r2", 0, true, "activity-control", "localized");
  tracer.End(false, "r1", 0);
  const std::vector<DecisionSpan> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].steps.size(), 2u);
  EXPECT_EQ(spans[0].dropped_steps, 2u);
  EXPECT_EQ(spans[0].steps[1].kind, TraceStep::Kind::kRule);
  EXPECT_EQ(spans[0].steps[1].priority, 5);
}

TEST(TraceTest, DescribeSpanAndJsonCarryTheCascade) {
  DecisionSpan span;
  span.seq = 3;
  span.shard = 1;
  span.operation = "rbac.checkAccess";
  span.allowed = true;
  span.rule = "CA.global";
  span.wall_ns = 2000;
  TraceStep ev;
  ev.kind = TraceStep::Kind::kEvent;
  ev.name = "flt.role.PM";
  span.steps.push_back(ev);
  TraceStep rule;
  rule.kind = TraceStep::Kind::kRule;
  rule.name = "CA.global";
  rule.priority = 2;
  rule.else_branch = false;
  rule.rule_class = "activity-control";
  rule.granularity = "globalized";
  span.steps.push_back(rule);

  const std::string line = DescribeSpan(span);
  EXPECT_NE(line.find("rbac.checkAccess -> ALLOW by CA.global"),
            std::string::npos);
  EXPECT_NE(line.find("ev:flt.role.PM"), std::string::npos);
  EXPECT_NE(line.find("rule:CA.global(p2,THEN)"), std::string::npos);

  const std::string json = RenderSpansJson({span});
  EXPECT_NE(json.find("\"operation\":\"rbac.checkAccess\""),
            std::string::npos);
  EXPECT_NE(json.find("\"branch\":\"then\""), std::string::npos);
  EXPECT_NE(json.find("\"class\":\"activity-control/globalized\""),
            std::string::npos);
}

// --------------------------------------------------- Engine instrumentation

class EngineTelemetryTest : public ::testing::Test {
 protected:
  EngineTelemetryTest() : clock_(testutil::Noon()), engine_(&clock_) {
    // Sample everything so assertions are deterministic.
    engine_.set_telemetry_sampling(1, 1);
    EXPECT_TRUE(engine_.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

TEST_F(EngineTelemetryTest, DispatchFeedsCountersHistogramsAndSpans) {
  EXPECT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "approve", "budget-request").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "fly", "moon").allowed);

  const RegistrySnapshot snap = engine_.metrics().Snapshot();
  EXPECT_EQ(snap.FindCounter("decisions_total")->value,
            engine_.decisions_made());
  EXPECT_EQ(snap.FindCounter("denials_total")->value, engine_.denials());
  EXPECT_GE(snap.FindCounter("decisions_total")->value, 4u);
  EXPECT_GE(snap.FindCounter("denials_total")->value, 1u);
  EXPECT_GT(snap.FindCounter("events_raised_total")->value, 0u);
  EXPECT_GT(snap.FindCounter("event_occurrences_total")->value, 0u);
  EXPECT_GT(snap.FindCounter("rule_firings_total")->value, 0u);
  // Every dispatch was timed (sampling 1): histogram mass equals decisions.
  EXPECT_EQ(snap.FindHistogram("decision_latency_us")->TotalCount(),
            engine_.decisions_made());
  EXPECT_GT(snap.FindHistogram("cascade_firings")->TotalCount(), 0u);

  const std::vector<DecisionSpan> spans = engine_.tracer().Spans();
  ASSERT_EQ(spans.size(), 4u);
  const DecisionSpan& check = spans[2];
  EXPECT_EQ(check.operation, "rbac.checkAccess");
  EXPECT_TRUE(check.allowed);
  EXPECT_FALSE(check.rule.empty());
  bool has_rule_step = false;
  for (const TraceStep& step : check.steps) {
    if (step.kind == TraceStep::Kind::kRule) has_rule_step = true;
  }
  EXPECT_TRUE(has_rule_step);
  // The default-denied request records a span with the fail-safe verdict.
  EXPECT_FALSE(spans[3].allowed);
}

TEST_F(EngineTelemetryTest, PendingTimerGaugeTracksTemporalState) {
  // The XYZ policy has no temporal events; seed one through the detector.
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  EventDetector& detector = engine.detector();
  const EventId base = *detector.DefinePrimitive("base");
  (void)*detector.DefinePlus("base.plus", base, kMinute);
  EXPECT_TRUE(detector.Raise(base, {}).ok());
  EXPECT_EQ(engine.metrics().Snapshot().FindGauge("pending_timers")->value, 1);
  engine.AdvanceBy(2 * kMinute);
  EXPECT_EQ(engine.metrics().Snapshot().FindGauge("pending_timers")->value, 0);
}

TEST_F(EngineTelemetryTest, AdminReportCarriesTelemetrySection) {
  EXPECT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  (void)engine_.CheckAccess("s1", "read", "ledger");
  const std::string report = GenerateAdminReport(engine_);
  EXPECT_NE(report.find("-- telemetry --"), std::string::npos);
  EXPECT_NE(report.find("audit trail overflow: 0 records shed"),
            std::string::npos);
  EXPECT_NE(report.find("decision latency (us, sampled): p50 "),
            std::string::npos);
  EXPECT_NE(report.find("event occurrences: "), std::string::npos);
  EXPECT_NE(report.find("trace spans: "), std::string::npos);
}

TEST_F(EngineTelemetryTest, AdminReportSurfacesAuditOverflow) {
  engine_.set_decision_log_capacity(2);
  EXPECT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  for (int i = 0; i < 5; ++i) (void)engine_.CheckAccess("s1", "read", "ledger");
  EXPECT_GT(engine_.decision_log_overflow(), 0u);
  const std::string report = GenerateAdminReport(engine_);
  EXPECT_NE(report.find("audit trail overflow: " +
                        std::to_string(engine_.decision_log_overflow()) +
                        " records shed"),
            std::string::npos);
}

// ---------------------------------------------------------- Periodic report

TEST(PeriodicReporterTest, TicksDeterministicallyOnTheSimulatedClock) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());

  std::vector<std::string> reports;
  ASSERT_TRUE(InstallPeriodicMetricsReporter(
                  engine, 10 * kMinute,
                  [&reports](const std::string& body) {
                    reports.push_back(body);
                  })
                  .ok());
  EXPECT_TRUE(reports.empty());  // Boot alone does not report.

  EXPECT_TRUE(engine.CreateSession("alice", "s1").allowed);
  engine.AdvanceBy(30 * kMinute);  // Exactly three intervals.
  ASSERT_EQ(reports.size(), 3u);
  EXPECT_NE(reports[0].find("# sentinelpp telemetry report @ "),
            std::string::npos);
  EXPECT_NE(reports[0].find("sentinelpp_decisions_total"), std::string::npos);
  // Later reports reflect later simulated instants (monotone headers).
  EXPECT_NE(reports[0].substr(0, 60), reports[2].substr(0, 60));

  // Each tick is itself a dispatch through the paper machinery: the TEL
  // rule shows up in the engine's own firing counters.
  EXPECT_GE(engine.rule_manager().total_fired(), 3u);
}

TEST(PeriodicReporterTest, RejectsBadIntervalAndDoubleInstall) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  EXPECT_FALSE(InstallPeriodicMetricsReporter(engine, 0).ok());
  ASSERT_TRUE(InstallPeriodicMetricsReporter(engine, kMinute).ok());
  const Status again = InstallPeriodicMetricsReporter(engine, kMinute);
  EXPECT_FALSE(again.ok());
  EXPECT_NE(again.message().find("already installed"), std::string::npos);
}

}  // namespace
}  // namespace telemetry
}  // namespace sentinel
