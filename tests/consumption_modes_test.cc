#include <gtest/gtest.h>

#include <vector>

#include "event/event_detector.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// Parameterized sweep: structural invariants that must hold for binary
/// operators in EVERY consumption mode, plus per-mode expected counts for
/// canonical initiator/terminator scripts.
class ConsumptionModeTest : public ::testing::TestWithParam<ConsumptionMode> {
 protected:
  ConsumptionModeTest() : clock_(testutil::Noon()), detector_(&clock_) {
    a_ = *detector_.DefinePrimitive("a");
    b_ = *detector_.DefinePrimitive("b");
    c_ = *detector_.DefinePrimitive("c");
  }

  void Watch(EventId event) {
    detector_.Subscribe(event,
                        [this](const Occurrence& occ) { log_.push_back(occ); });
  }

  void Raise(EventId event, ParamMap params = {}) {
    clock_.Advance(kMillisecond);  // Distinct instants for clean ordering.
    ASSERT_TRUE(detector_.Raise(event, std::move(params)).ok());
  }

  ConsumptionMode mode() const { return GetParam(); }

  SimulatedClock clock_;
  EventDetector detector_;
  EventId a_ = kInvalidEventId, b_ = kInvalidEventId, c_ = kInvalidEventId;
  std::vector<Occurrence> log_;
};

TEST_P(ConsumptionModeTest, AndNeverFiresFromOneSide) {
  const EventId and_ev = *detector_.DefineAnd("and", a_, b_, mode());
  Watch(and_ev);
  for (int i = 0; i < 5; ++i) Raise(a_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, AndSinglePairDetectsExactlyOnce) {
  const EventId and_ev = *detector_.DefineAnd("and", a_, b_, mode());
  Watch(and_ev);
  Raise(a_);
  Raise(b_);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_P(ConsumptionModeTest, AndTwoInitiatorsOneTerminatorCounts) {
  const EventId and_ev = *detector_.DefineAnd("and", a_, b_, mode());
  Watch(and_ev);
  Raise(a_);
  Raise(a_);
  Raise(b_);
  const size_t expected =
      mode() == ConsumptionMode::kContinuous ? 2u : 1u;
  EXPECT_EQ(log_.size(), expected);
}

TEST_P(ConsumptionModeTest, SeqNeverFiresOnReversedOrder) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(b_);
  Raise(b_);
  Raise(a_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, SeqTwoLeftsOneRightCounts) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_, {{"x", Value(1)}});
  Raise(a_, {{"x", Value(2)}});
  Raise(b_);
  size_t expected = 1u;
  if (mode() == ConsumptionMode::kContinuous) expected = 2u;
  ASSERT_EQ(log_.size(), expected);
  // Which initiator pairs depends on the mode.
  if (mode() == ConsumptionMode::kRecent) {
    EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(2));
  } else if (mode() == ConsumptionMode::kChronicle) {
    EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(1));
  }
}

TEST_P(ConsumptionModeTest, SeqIntervalSpansInitiatorToTerminator) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_);
  const Time a_time = clock_.Now();
  Raise(b_);
  const Time b_time = clock_.Now();
  ASSERT_GE(log_.size(), 1u);
  for (const Occurrence& occ : log_) {
    EXPECT_EQ(occ.start, a_time);
    EXPECT_EQ(occ.end, b_time);
    EXPECT_LE(occ.start, occ.end);
  }
}

TEST_P(ConsumptionModeTest, SeqRepeatedTerminators) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_);
  Raise(b_);
  Raise(b_);
  // Recent retains the initiator: both b's detect. All consuming modes
  // detect once.
  const size_t expected = mode() == ConsumptionMode::kRecent ? 2u : 1u;
  EXPECT_EQ(log_.size(), expected);
}

TEST_P(ConsumptionModeTest, NotMiddleAlwaysInvalidates) {
  const EventId not_ev = *detector_.DefineNot("not", a_, b_, c_, mode());
  Watch(not_ev);
  Raise(a_);
  Raise(a_);
  Raise(b_);
  Raise(c_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, NotCleanWindowDetects) {
  const EventId not_ev = *detector_.DefineNot("not", a_, b_, c_, mode());
  Watch(not_ev);
  Raise(a_);
  Raise(c_);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_P(ConsumptionModeTest, AperiodicMiddleCountMatchesMode) {
  const EventId ap = *detector_.DefineAperiodic("ap", a_, b_, c_, mode());
  Watch(ap);
  Raise(a_);
  Raise(a_);
  Raise(b_);
  size_t expected = 1u;
  if (mode() == ConsumptionMode::kContinuous) expected = 2u;
  EXPECT_EQ(log_.size(), expected);
}

TEST_P(ConsumptionModeTest, AperiodicNoDetectionOutsideWindow) {
  const EventId ap = *detector_.DefineAperiodic("ap", a_, b_, c_, mode());
  Watch(ap);
  Raise(b_);
  Raise(a_);
  Raise(c_);
  Raise(b_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, PeriodicTickCountIndependentOfMode) {
  const EventId per =
      *detector_.DefinePeriodic("per", a_, 10 * kSecond, c_, mode());
  Watch(per);
  Raise(a_);
  detector_.AdvanceTo(clock_.Now() + 25 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 2u);
  Raise(c_);
  detector_.AdvanceTo(clock_.Now() + 25 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ConsumptionModeTest,
    ::testing::Values(ConsumptionMode::kRecent, ConsumptionMode::kChronicle,
                      ConsumptionMode::kContinuous,
                      ConsumptionMode::kCumulative),
    [](const ::testing::TestParamInfo<ConsumptionMode>& info) {
      return ConsumptionModeToString(info.param);
    });

}  // namespace
}  // namespace sentinel
