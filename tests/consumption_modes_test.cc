#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "event/event_detector.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// Parameterized sweep: structural invariants that must hold for binary
/// operators in EVERY consumption mode, plus per-mode expected counts for
/// canonical initiator/terminator scripts.
class ConsumptionModeTest : public ::testing::TestWithParam<ConsumptionMode> {
 protected:
  ConsumptionModeTest() : clock_(testutil::Noon()), detector_(&clock_) {
    a_ = *detector_.DefinePrimitive("a");
    b_ = *detector_.DefinePrimitive("b");
    c_ = *detector_.DefinePrimitive("c");
  }

  void Watch(EventId event) {
    detector_.Subscribe(event,
                        [this](const Occurrence& occ) { log_.push_back(occ); });
  }

  void Raise(EventId event, ParamMap params = {}) {
    clock_.Advance(kMillisecond);  // Distinct instants for clean ordering.
    ASSERT_TRUE(detector_.Raise(event, std::move(params)).ok());
  }

  ConsumptionMode mode() const { return GetParam(); }

  SimulatedClock clock_;
  EventDetector detector_;
  EventId a_ = kInvalidEventId, b_ = kInvalidEventId, c_ = kInvalidEventId;
  std::vector<Occurrence> log_;
};

TEST_P(ConsumptionModeTest, AndNeverFiresFromOneSide) {
  const EventId and_ev = *detector_.DefineAnd("and", a_, b_, mode());
  Watch(and_ev);
  for (int i = 0; i < 5; ++i) Raise(a_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, AndSinglePairDetectsExactlyOnce) {
  const EventId and_ev = *detector_.DefineAnd("and", a_, b_, mode());
  Watch(and_ev);
  Raise(a_);
  Raise(b_);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_P(ConsumptionModeTest, AndTwoInitiatorsOneTerminatorCounts) {
  const EventId and_ev = *detector_.DefineAnd("and", a_, b_, mode());
  Watch(and_ev);
  Raise(a_);
  Raise(a_);
  Raise(b_);
  const size_t expected =
      mode() == ConsumptionMode::kContinuous ? 2u : 1u;
  EXPECT_EQ(log_.size(), expected);
}

TEST_P(ConsumptionModeTest, SeqNeverFiresOnReversedOrder) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(b_);
  Raise(b_);
  Raise(a_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, SeqTwoLeftsOneRightCounts) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_, {{"x", Value(1)}});
  Raise(a_, {{"x", Value(2)}});
  Raise(b_);
  size_t expected = 1u;
  if (mode() == ConsumptionMode::kContinuous) expected = 2u;
  ASSERT_EQ(log_.size(), expected);
  // Which initiator pairs depends on the mode.
  if (mode() == ConsumptionMode::kRecent) {
    EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(2));
  } else if (mode() == ConsumptionMode::kChronicle) {
    EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(1));
  }
}

TEST_P(ConsumptionModeTest, SeqIntervalSpansInitiatorToTerminator) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_);
  const Time a_time = clock_.Now();
  Raise(b_);
  const Time b_time = clock_.Now();
  ASSERT_GE(log_.size(), 1u);
  for (const Occurrence& occ : log_) {
    EXPECT_EQ(occ.start, a_time);
    EXPECT_EQ(occ.end, b_time);
    EXPECT_LE(occ.start, occ.end);
  }
}

TEST_P(ConsumptionModeTest, SeqRepeatedTerminators) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_);
  Raise(b_);
  Raise(b_);
  // Recent retains the initiator: both b's detect. All consuming modes
  // detect once.
  const size_t expected = mode() == ConsumptionMode::kRecent ? 2u : 1u;
  EXPECT_EQ(log_.size(), expected);
}

TEST_P(ConsumptionModeTest, NotMiddleAlwaysInvalidates) {
  const EventId not_ev = *detector_.DefineNot("not", a_, b_, c_, mode());
  Watch(not_ev);
  Raise(a_);
  Raise(a_);
  Raise(b_);
  Raise(c_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, NotCleanWindowDetects) {
  const EventId not_ev = *detector_.DefineNot("not", a_, b_, c_, mode());
  Watch(not_ev);
  Raise(a_);
  Raise(c_);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_P(ConsumptionModeTest, AperiodicMiddleCountMatchesMode) {
  const EventId ap = *detector_.DefineAperiodic("ap", a_, b_, c_, mode());
  Watch(ap);
  Raise(a_);
  Raise(a_);
  Raise(b_);
  size_t expected = 1u;
  if (mode() == ConsumptionMode::kContinuous) expected = 2u;
  EXPECT_EQ(log_.size(), expected);
}

TEST_P(ConsumptionModeTest, AperiodicNoDetectionOutsideWindow) {
  const EventId ap = *detector_.DefineAperiodic("ap", a_, b_, c_, mode());
  Watch(ap);
  Raise(b_);
  Raise(a_);
  Raise(c_);
  Raise(b_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_P(ConsumptionModeTest, PeriodicTickCountIndependentOfMode) {
  const EventId per =
      *detector_.DefinePeriodic("per", a_, 10 * kSecond, c_, mode());
  Watch(per);
  Raise(a_);
  detector_.AdvanceTo(clock_.Now() + 25 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 2u);
  Raise(c_);
  detector_.AdvanceTo(clock_.Now() + 25 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, ConsumptionModeTest,
    ::testing::Values(ConsumptionMode::kRecent, ConsumptionMode::kChronicle,
                      ConsumptionMode::kContinuous,
                      ConsumptionMode::kCumulative),
    [](const ::testing::TestParamInfo<ConsumptionMode>& info) {
      return ConsumptionModeToString(info.param);
    });

// ======================================================================
// Table-driven initiator-pairing sweeps for SEQ and APERIODIC: for a
// fixed raise script, each mode selects different initiators (and the
// cumulative mode merges them), so every table row pins down the exact
// per-mode pairing — which occurrence participates, in which order,
// consumed or retained.
// ======================================================================

/// Expected initiator tags (the "x" param raised with each initiator)
/// carried by the emitted detections, in emission order, per mode.
struct ModeExpectations {
  std::vector<int> recent;
  std::vector<int> chronicle;
  std::vector<int> continuous;
  std::vector<int> cumulative;
};

/// One script: space-separated tokens, `a<digit>` raises the initiator
/// with param x=<digit>, `b`/`b<digit>` the second constituent (SEQ
/// terminator / APERIODIC middle, param y), `c` the APERIODIC terminator.
struct PairingCase {
  const char* label;
  const char* script;
  ModeExpectations expect;
};

const std::vector<int>& ExpectedFor(const ModeExpectations& e,
                                    ConsumptionMode mode) {
  switch (mode) {
    case ConsumptionMode::kRecent:
      return e.recent;
    case ConsumptionMode::kChronicle:
      return e.chronicle;
    case ConsumptionMode::kContinuous:
      return e.continuous;
    case ConsumptionMode::kCumulative:
      return e.cumulative;
  }
  return e.recent;
}

class PairingFixture
    : public ::testing::TestWithParam<std::tuple<ConsumptionMode, PairingCase>> {
 protected:
  PairingFixture() : clock_(testutil::Noon()), detector_(&clock_) {
    a_ = *detector_.DefinePrimitive("a");
    b_ = *detector_.DefinePrimitive("b");
    c_ = *detector_.DefinePrimitive("c");
  }

  ConsumptionMode mode() const { return std::get<0>(GetParam()); }
  const PairingCase& pairing_case() const { return std::get<1>(GetParam()); }

  void Watch(EventId event) {
    detector_.Subscribe(event,
                        [this](const Occurrence& occ) { log_.push_back(occ); });
  }

  /// Runs the script, one millisecond apart so ordering is strict.
  void RunScript() {
    std::istringstream tokens(pairing_case().script);
    std::string token;
    while (tokens >> token) {
      const EventId event = token[0] == 'a' ? a_ : token[0] == 'b' ? b_ : c_;
      ParamMap params;
      if (token.size() > 1) {
        const Value tag(token[1] - '0');
        params.emplace(token[0] == 'a' ? "x" : "y", tag);
      }
      clock_.Advance(kMillisecond);
      ASSERT_TRUE(detector_.Raise(event, std::move(params)).ok());
    }
  }

  /// Asserts the detections carry exactly the expected initiator tags.
  void CheckDetections() {
    const std::vector<int>& expected =
        ExpectedFor(pairing_case().expect, mode());
    ASSERT_EQ(log_.size(), expected.size())
        << pairing_case().label << " in "
        << ConsumptionModeToString(mode());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(log_[i].params.Get(detector_.symbols(), "x"),
                Value(expected[i]))
          << pairing_case().label << " detection #" << i << " in "
          << ConsumptionModeToString(mode());
    }
  }

  SimulatedClock clock_;
  EventDetector detector_;
  EventId a_ = kInvalidEventId, b_ = kInvalidEventId, c_ = kInvalidEventId;
  std::vector<Occurrence> log_;
};

std::string PairingName(
    const ::testing::TestParamInfo<std::tuple<ConsumptionMode, PairingCase>>&
        info) {
  return std::string(std::get<1>(info.param).label) + "_" +
         ConsumptionModeToString(std::get<0>(info.param));
}

// ------------------------------------------------------------------ SEQ

using SeqPairingTest = PairingFixture;

TEST_P(SeqPairingTest, InitiatorSelectionMatchesMode) {
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  RunScript();
  CheckDetections();
}

INSTANTIATE_TEST_SUITE_P(
    Scripts, SeqPairingTest,
    ::testing::Combine(
        ::testing::Values(ConsumptionMode::kRecent,
                          ConsumptionMode::kChronicle,
                          ConsumptionMode::kContinuous,
                          ConsumptionMode::kCumulative),
        ::testing::Values(
            // Recent keeps only the newest initiator; chronicle consumes
            // FIFO; continuous pairs each; cumulative merges (the newest
            // tag wins the merged "x").
            PairingCase{"TwoInitsOneTerm", "a1 a2 b9",
                        {{2}, {1}, {1, 2}, {2}}},
            // Recent retains its initiator across terminators; every
            // consuming mode used it up on the first.
            PairingCase{"TermReplay", "a1 b8 b9",
                        {{1, 1}, {1}, {1}, {1}}},
            // Disjoint pairs behave identically everywhere.
            PairingCase{"Interleaved", "a1 b8 a2 b9",
                        {{1, 2}, {1, 2}, {1, 2}, {1, 2}}},
            // A terminator with nothing open never detects; the stale
            // terminator must not pair with a later initiator.
            PairingCase{"TermFirst", "b9 a1 b8",
                        {{1}, {1}, {1}, {1}}})),
    PairingName);

TEST_P(ConsumptionModeTest, SeqCumulativeIntervalSpansOldestInitiator) {
  if (mode() != ConsumptionMode::kCumulative) GTEST_SKIP();
  const EventId seq = *detector_.DefineSeq("seq", a_, b_, mode());
  Watch(seq);
  Raise(a_);
  const Time oldest = clock_.Now();
  Raise(a_);
  Raise(b_);
  const Time term = clock_.Now();
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].start, oldest);  // Merged window opens at the oldest.
  EXPECT_EQ(log_[0].end, term);
}

// ------------------------------------------------------------ APERIODIC

using AperiodicPairingTest = PairingFixture;

TEST_P(AperiodicPairingTest, WindowSelectionMatchesMode) {
  const EventId ap = *detector_.DefineAperiodic("ap", a_, b_, c_, mode());
  Watch(ap);
  RunScript();
  CheckDetections();
}

INSTANTIATE_TEST_SUITE_P(
    Scripts, AperiodicPairingTest,
    ::testing::Combine(
        ::testing::Values(ConsumptionMode::kRecent,
                          ConsumptionMode::kChronicle,
                          ConsumptionMode::kContinuous,
                          ConsumptionMode::kCumulative),
        ::testing::Values(
            // Middles do not consume windows: recent re-pairs the newest
            // window each time, chronicle re-pairs the oldest, continuous
            // emits once per open window per middle, cumulative merges
            // all open windows per middle (newest tag wins).
            PairingCase{"TwoWindowsTwoMiddles", "a1 a2 b8 b9",
                        {{2, 2}, {1, 1}, {1, 2, 1, 2}, {2, 2}}},
            // The terminator closes windows: a middle after it finds
            // nothing, in every mode.
            PairingCase{"TermClosesWindow", "a1 b8 c b9",
                        {{1}, {1}, {1}, {1}}},
            // Terminator consumption differs by mode: chronicle pops one
            // window (the oldest) and keeps the rest; recent, continuous
            // and cumulative close everything.
            PairingCase{"ChronicleTermPopsOne", "a1 a2 c b9",
                        {{}, {2}, {}, {}}},
            // A middle with no window yet is dropped; the window opened
            // afterwards still detects on the next middle.
            PairingCase{"MiddleBeforeWindow", "b8 a1 b9",
                        {{1}, {1}, {1}, {1}}})),
    PairingName);

}  // namespace
}  // namespace sentinel
