#include <gtest/gtest.h>

#include "workload/policy_gen.h"
#include "workload/request_gen.h"

namespace sentinel {
namespace {

TEST(PolicyGenTest, GeneratedPolicyValidates) {
  for (uint64_t seed : {1u, 7u, 42u, 1234u}) {
    PolicyGenParams params;
    params.seed = seed;
    const Policy policy = GeneratePolicy(params);
    EXPECT_TRUE(policy.Validate().ok()) << "seed " << seed;
    EXPECT_EQ(policy.roles().size(), 50u);
    EXPECT_EQ(policy.users().size(), 100u);
  }
}

TEST(PolicyGenTest, DeterministicInSeed) {
  PolicyGenParams params;
  params.seed = 99;
  EXPECT_EQ(GeneratePolicy(params), GeneratePolicy(params));
  PolicyGenParams other = params;
  other.seed = 100;
  EXPECT_FALSE(GeneratePolicy(params) == GeneratePolicy(other));
}

TEST(PolicyGenTest, ShapeParametersRespected) {
  PolicyGenParams params;
  params.num_roles = 10;
  params.num_users = 5;
  params.ssd_sets = 1;
  params.dsd_sets = 0;
  params.cardinality_frac = 1.0;
  params.duration_frac = 1.0;
  const Policy policy = GeneratePolicy(params);
  EXPECT_EQ(policy.roles().size(), 10u);
  EXPECT_EQ(policy.users().size(), 5u);
  EXPECT_EQ(policy.ssd_sets().size(), 1u);
  EXPECT_EQ(policy.dsd_sets().size(), 0u);
  for (const auto& [name, spec] : policy.roles()) {
    EXPECT_GT(spec.activation_cardinality, 0);
    EXPECT_GT(spec.max_activation, 0);
  }
}

TEST(PolicyGenTest, AssignmentsRespectSsd) {
  PolicyGenParams params;
  params.seed = 5;
  params.ssd_sets = 4;
  params.hierarchy_prob = 0.8;
  const Policy policy = GeneratePolicy(params);
  // Loading through the strict RbacSystem would fail on any violation;
  // Validate + a manual check of direct assignments suffices here.
  for (const auto& [user, spec] : policy.users()) {
    for (const auto& [set_name, set] : policy.ssd_sets()) {
      int hits = 0;
      for (const RoleName& role : spec.assignments) {
        if (set.roles.count(role) > 0) ++hits;
      }
      EXPECT_LT(hits, set.n) << user << " vs " << set_name;
    }
  }
}

TEST(PolicyGenTest, ShiftFractionProducesWindows) {
  PolicyGenParams params;
  params.seed = 11;
  params.shift_frac = 1.0;
  const Policy policy = GeneratePolicy(params);
  int windows = 0;
  for (const auto& [name, spec] : policy.roles()) {
    if (spec.enabling_window.has_value()) ++windows;
  }
  EXPECT_EQ(windows, params.num_roles);
}

TEST(RequestGenTest, DeterministicInSeed) {
  const Policy policy = GeneratePolicy(PolicyGenParams{});
  RequestGenParams params;
  params.seed = 3;
  params.num_requests = 100;
  auto a = RequestGenerator(policy, params).Generate();
  auto b = RequestGenerator(policy, params).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].user, b[i].user);
    EXPECT_EQ(a[i].session, b[i].session);
    EXPECT_EQ(a[i].role, b[i].role);
  }
}

TEST(RequestGenTest, GeneratesRequestedCount) {
  const Policy policy = GeneratePolicy(PolicyGenParams{});
  RequestGenParams params;
  params.num_requests = 500;
  const auto requests = RequestGenerator(policy, params).Generate();
  EXPECT_EQ(requests.size(), 500u);
}

TEST(RequestGenTest, MixWeightsSteerKinds) {
  const Policy policy = GeneratePolicy(PolicyGenParams{});
  RequestGenParams params;
  params.num_requests = 500;
  params.mix = RequestMix{};
  params.mix.check_access = 0;
  params.mix.advance_time = 0;
  const auto requests = RequestGenerator(policy, params).Generate();
  for (const Request& request : requests) {
    EXPECT_NE(request.kind, RequestKind::kCheckAccess);
    EXPECT_NE(request.kind, RequestKind::kAdvanceTime);
  }
}

TEST(RequestGenTest, AdvanceDurationsAreOddAndBounded) {
  const Policy policy = GeneratePolicy(PolicyGenParams{});
  RequestGenParams params;
  params.num_requests = 2000;
  params.max_advance = kMinute;
  const auto requests = RequestGenerator(policy, params).Generate();
  int advances = 0;
  for (const Request& request : requests) {
    if (request.kind != RequestKind::kAdvanceTime) continue;
    ++advances;
    EXPECT_EQ(request.advance % 2, 1) << "odd microseconds expected";
    EXPECT_LE(request.advance, kMinute);
    EXPECT_GT(request.advance, 0);
  }
  EXPECT_GT(advances, 0);
}

TEST(RequestGenTest, SessionKindsReferenceCreatedSessions) {
  const Policy policy = GeneratePolicy(PolicyGenParams{});
  RequestGenParams params;
  params.num_requests = 300;
  params.invalid_frac = 0.0;
  const auto requests = RequestGenerator(policy, params).Generate();
  std::set<SessionId> created;
  for (const Request& request : requests) {
    if (request.kind == RequestKind::kCreateSession) {
      created.insert(request.session);
    } else if (request.kind == RequestKind::kCheckAccess ||
               request.kind == RequestKind::kAddActiveRole ||
               request.kind == RequestKind::kDropActiveRole ||
               request.kind == RequestKind::kDeleteSession) {
      EXPECT_EQ(created.count(request.session), 1u)
          << RequestKindToString(request.kind);
    }
  }
}

TEST(RequestGenTest, KindNames) {
  EXPECT_STREQ(RequestKindToString(RequestKind::kCheckAccess),
               "checkAccess");
  EXPECT_STREQ(RequestKindToString(RequestKind::kAdvanceTime),
               "advanceTime");
}

}  // namespace
}  // namespace sentinel
