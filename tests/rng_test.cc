#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace sentinel {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(11);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, NextIntInclusiveBounds) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.NextInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolEdgeProbabilities) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.NextBool(0.0));
    EXPECT_TRUE(rng.NextBool(1.0));
  }
}

TEST(RngTest, NextBoolApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  for (int i = 0; i < 10000; ++i) hits += rng.NextBool(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(21);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(&shuffled);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
}

TEST(RngTest, ShuffleDeterministic) {
  std::vector<int> a = {1, 2, 3, 4, 5}, b = a;
  Rng ra(33), rb(33);
  ra.Shuffle(&a);
  rb.Shuffle(&b);
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace sentinel
