#include "event/event_detector.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/calendar.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

class EventDetectorTest : public ::testing::Test {
 protected:
  EventDetectorTest() : clock_(testutil::Noon()), detector_(&clock_) {}

  EventId Prim(const std::string& name) {
    return *detector_.DefinePrimitive(name);
  }

  /// Subscribes and appends every occurrence of `event` to `log_`.
  void Watch(EventId event) {
    detector_.Subscribe(event, [this](const Occurrence& occ) {
      log_.push_back(occ);
    });
  }

  void Raise(EventId event, ParamMap params = {}) {
    ASSERT_TRUE(detector_.Raise(event, std::move(params)).ok());
  }

  SimulatedClock clock_;
  EventDetector detector_;
  std::vector<Occurrence> log_;
};

TEST_F(EventDetectorTest, PrimitiveRaiseNotifiesSubscribers) {
  const EventId e = Prim("e");
  Watch(e);
  Raise(e, {{"k", Value("v")}});
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].event, e);
  EXPECT_EQ(log_[0].source, e);
  EXPECT_EQ(log_[0].start, testutil::Noon());
  EXPECT_EQ(log_[0].end, testutil::Noon());
  EXPECT_EQ(log_[0].params.GetString(detector_.symbols(), "k"), "v");
}

TEST_F(EventDetectorTest, RaiseRejectsCompositeAndUnknown) {
  const EventId a = Prim("a");
  const EventId or_ev = *detector_.DefineOr("or", {a});
  EXPECT_FALSE(detector_.Raise(or_ev, {}).ok());
  EXPECT_FALSE(detector_.Raise(999, {}).ok());
  EXPECT_FALSE(detector_.RaiseByName("nope", {}).ok());
}

TEST_F(EventDetectorTest, DuplicateNameRejected) {
  Prim("dup");
  EXPECT_FALSE(detector_.DefinePrimitive("dup").ok());
}

TEST_F(EventDetectorTest, UnsubscribeStopsDelivery) {
  const EventId e = Prim("e");
  int count = 0;
  const SubscriptionId sub =
      detector_.Subscribe(e, [&](const Occurrence&) { ++count; });
  Raise(e);
  detector_.Unsubscribe(e, sub);
  Raise(e);
  EXPECT_EQ(count, 1);
}

// ------------------------------------------------------------- FILTER

TEST_F(EventDetectorTest, FilterPassesOnlyMatchingParams) {
  const EventId e = Prim("e");
  const EventId f =
      *detector_.DefineFilter("f", e, {{"role", Value("R1")}});
  Watch(f);
  Raise(e, {{"role", Value("R1")}, {"user", Value("bob")}});
  Raise(e, {{"role", Value("R2")}});
  Raise(e, {});  // Missing key.
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.GetString(detector_.symbols(), "user"), "bob");
}

TEST_F(EventDetectorTest, FilterChainsCompose) {
  const EventId e = Prim("e");
  const EventId f1 = *detector_.DefineFilter("f1", e, {{"a", Value(1)}});
  const EventId f2 = *detector_.DefineFilter("f2", f1, {{"b", Value(2)}});
  Watch(f2);
  Raise(e, {{"a", Value(1)}, {"b", Value(2)}});
  Raise(e, {{"a", Value(1)}, {"b", Value(3)}});
  EXPECT_EQ(log_.size(), 1u);
}

// ----------------------------------------------------------------- OR

TEST_F(EventDetectorTest, OrDetectsAnyAlternativeAndTracksSource) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId or_ev = *detector_.DefineOr("or", {a, b});
  Watch(or_ev);
  Raise(a);
  Raise(b);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].source, a);
  EXPECT_EQ(log_[1].source, b);
}

// ---------------------------------------------------------------- AND

TEST_F(EventDetectorTest, AndRecentPairsWithMostRecent) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId and_ev =
      *detector_.DefineAnd("and", a, b, ConsumptionMode::kRecent);
  Watch(and_ev);
  Raise(a, {{"x", Value(1)}});
  Raise(a, {{"x", Value(2)}});
  Raise(b, {{"y", Value(9)}});
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(2));  // Most recent a.
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "y"), Value(9));
  // Recent keeps the initiator: another b pairs again.
  Raise(b);
  EXPECT_EQ(log_.size(), 2u);
}

TEST_F(EventDetectorTest, AndChroniclePairsFifoAndConsumes) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId and_ev =
      *detector_.DefineAnd("and", a, b, ConsumptionMode::kChronicle);
  Watch(and_ev);
  Raise(a, {{"x", Value(1)}});
  Raise(a, {{"x", Value(2)}});
  Raise(b);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(1));  // Oldest a.
  Raise(b);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[1].params.Get(detector_.symbols(), "x"), Value(2));
  Raise(b);  // No a left: b queues on its own side.
  EXPECT_EQ(log_.size(), 2u);
}

TEST_F(EventDetectorTest, AndContinuousPairsWithAllAndConsumes) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId and_ev =
      *detector_.DefineAnd("and", a, b, ConsumptionMode::kContinuous);
  Watch(and_ev);
  Raise(a, {{"x", Value(1)}});
  Raise(a, {{"x", Value(2)}});
  Raise(b);
  EXPECT_EQ(log_.size(), 2u);
  Raise(b);  // All consumed.
  EXPECT_EQ(log_.size(), 2u);
}

TEST_F(EventDetectorTest, AndCumulativeMergesAll) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId and_ev =
      *detector_.DefineAnd("and", a, b, ConsumptionMode::kCumulative);
  Watch(and_ev);
  Raise(a, {{"x", Value(1)}});
  Raise(a, {{"y", Value(2)}});
  Raise(b, {{"z", Value(3)}});
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(1));
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "y"), Value(2));
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "z"), Value(3));
}

TEST_F(EventDetectorTest, AndEitherOrderDetects) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId and_ev = *detector_.DefineAnd("and", a, b);
  Watch(and_ev);
  Raise(b);
  Raise(a);
  EXPECT_EQ(log_.size(), 1u);
}

// ---------------------------------------------------------------- SEQ

TEST_F(EventDetectorTest, SeqRequiresOrder) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId seq = *detector_.DefineSeq("seq", a, b);
  Watch(seq);
  Raise(b);  // b before any a: nothing.
  EXPECT_EQ(log_.size(), 0u);
  Raise(a);
  clock_.Advance(kSecond);
  Raise(b);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].start, testutil::Noon());
  EXPECT_EQ(log_[0].end, testutil::Noon() + kSecond);
}

TEST_F(EventDetectorTest, SeqSameInstantUsesSequenceNumbers) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId seq = *detector_.DefineSeq("seq", a, b);
  Watch(seq);
  Raise(a);
  Raise(b);  // Same simulated instant, later seq: still "after".
  EXPECT_EQ(log_.size(), 1u);
}

TEST_F(EventDetectorTest, SeqChronicleConsumesOldestEligible) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId seq =
      *detector_.DefineSeq("seq", a, b, ConsumptionMode::kChronicle);
  Watch(seq);
  Raise(a, {{"x", Value(1)}});
  clock_.Advance(kSecond);
  Raise(a, {{"x", Value(2)}});
  clock_.Advance(kSecond);
  Raise(b);
  Raise(b);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "x"), Value(1));
  EXPECT_EQ(log_[1].params.Get(detector_.symbols(), "x"), Value(2));
}

TEST_F(EventDetectorTest, SeqContinuousDetectsPerInitiator) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId seq =
      *detector_.DefineSeq("seq", a, b, ConsumptionMode::kContinuous);
  Watch(seq);
  Raise(a);
  Raise(a);
  clock_.Advance(kSecond);
  Raise(b);
  EXPECT_EQ(log_.size(), 2u);
}

// ---------------------------------------------------------------- NOT

TEST_F(EventDetectorTest, NotDetectsWhenMiddleAbsent) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId not_ev = *detector_.DefineNot("not", a, b, c);
  Watch(not_ev);
  Raise(a);
  clock_.Advance(kSecond);
  Raise(c);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_F(EventDetectorTest, NotSuppressedByMiddle) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId not_ev = *detector_.DefineNot("not", a, b, c);
  Watch(not_ev);
  Raise(a);
  Raise(b);  // Middle occurred: window invalidated.
  Raise(c);
  EXPECT_EQ(log_.size(), 0u);
  // A fresh window works again.
  Raise(a);
  Raise(c);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_F(EventDetectorTest, NotTerminatorWithoutInitiatorIgnored) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId not_ev = *detector_.DefineNot("not", a, b, c);
  Watch(not_ev);
  Raise(c);
  EXPECT_EQ(log_.size(), 0u);
}

// --------------------------------------------------------------- PLUS

TEST_F(EventDetectorTest, PlusFiresAfterDelta) {
  const EventId a = Prim("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 5 * kSecond);
  Watch(plus);
  Raise(a, {{"user", Value("bob")}});
  detector_.AdvanceTo(testutil::Noon() + 4 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 0u);
  detector_.AdvanceTo(testutil::Noon() + 5 * kSecond, &clock_);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].start, testutil::Noon());
  EXPECT_EQ(log_[0].end, testutil::Noon() + 5 * kSecond);
  EXPECT_EQ(log_[0].params.GetString(detector_.symbols(), "user"), "bob");
}

TEST_F(EventDetectorTest, PlusEachOccurrenceSchedulesItsOwnExpiry) {
  const EventId a = Prim("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 10 * kSecond);
  Watch(plus);
  Raise(a, {{"n", Value(1)}});
  clock_.Advance(3 * kSecond);
  Raise(a, {{"n", Value(2)}});
  detector_.AdvanceTo(testutil::Noon() + kMinute, &clock_);
  ASSERT_EQ(log_.size(), 2u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "n"), Value(1));
  EXPECT_EQ(log_[1].params.Get(detector_.symbols(), "n"), Value(2));
}

TEST_F(EventDetectorTest, PlusCancelByParamMatch) {
  const EventId a = Prim("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 5 * kSecond);
  Watch(plus);
  Raise(a, {{"session", Value("s1")}});
  Raise(a, {{"session", Value("s2")}});
  auto cancelled =
      detector_.CancelPendingPlus(plus, {{"session", Value("s1")}});
  ASSERT_TRUE(cancelled.ok());
  EXPECT_EQ(*cancelled, 1);
  detector_.AdvanceTo(testutil::Noon() + kMinute, &clock_);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.GetString(detector_.symbols(), "session"), "s2");
}

TEST_F(EventDetectorTest, CancelPendingPlusRejectsNonPlus) {
  const EventId a = Prim("a");
  EXPECT_FALSE(detector_.CancelPendingPlus(a, {}).ok());
}

TEST_F(EventDetectorTest, PlusRejectsNonPositiveDelta) {
  const EventId a = Prim("a");
  EXPECT_FALSE(detector_.DefinePlus("bad", a, 0).ok());
}

// ----------------------------------------------------------- APERIODIC

TEST_F(EventDetectorTest, AperiodicDetectsMiddleInsideWindow) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId ap = *detector_.DefineAperiodic("ap", a, b, c);
  Watch(ap);
  Raise(b);  // Before window: nothing.
  Raise(a);
  Raise(b);
  Raise(b);
  Raise(c);
  Raise(b);  // After terminator: nothing.
  EXPECT_EQ(log_.size(), 2u);
}

TEST_F(EventDetectorTest, AperiodicMergesInitiatorAndMiddleParams) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId ap = *detector_.DefineAperiodic("ap", a, b, c);
  Watch(ap);
  Raise(a, {{"w", Value("win")}});
  Raise(b, {{"m", Value("mid")}});
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.GetString(detector_.symbols(), "w"), "win");
  EXPECT_EQ(log_[0].params.GetString(detector_.symbols(), "m"), "mid");
}

TEST_F(EventDetectorTest, AperiodicRecentNewInitiatorReplacesWindow) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId ap =
      *detector_.DefineAperiodic("ap", a, b, c, ConsumptionMode::kRecent);
  Watch(ap);
  Raise(a, {{"w", Value(1)}});
  Raise(a, {{"w", Value(2)}});
  Raise(b);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "w"), Value(2));
}

TEST_F(EventDetectorTest, AperiodicStarAccumulatesAndEmitsAtTerminator) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId ap = *detector_.DefineAperiodicStar("ap*", a, b, c);
  Watch(ap);
  Raise(a);
  Raise(b);
  Raise(b);
  Raise(b);
  EXPECT_EQ(log_.size(), 0u);  // Nothing until the terminator.
  Raise(c);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "_count"), Value(int64_t{3}));
}

TEST_F(EventDetectorTest, AperiodicStarEmitsZeroCountWindow) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId ap = *detector_.DefineAperiodicStar("ap*", a, b, c);
  Watch(ap);
  Raise(a);
  Raise(c);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "_count"), Value(int64_t{0}));
}

// ------------------------------------------------------------ PERIODIC

TEST_F(EventDetectorTest, PeriodicTicksUntilTerminator) {
  const EventId a = Prim("a");
  const EventId c = Prim("c");
  const EventId per =
      *detector_.DefinePeriodic("per", a, 10 * kSecond, c);
  Watch(per);
  Raise(a);
  detector_.AdvanceTo(testutil::Noon() + 35 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 3u);  // Ticks at +10, +20, +30.
  Raise(c);
  detector_.AdvanceTo(testutil::Noon() + 2 * kMinute, &clock_);
  EXPECT_EQ(log_.size(), 3u);  // Stopped.
}

TEST_F(EventDetectorTest, PeriodicStarCountsTicks) {
  const EventId a = Prim("a");
  const EventId c = Prim("c");
  const EventId per =
      *detector_.DefinePeriodicStar("per*", a, 10 * kSecond, c);
  Watch(per);
  Raise(a);
  detector_.AdvanceTo(testutil::Noon() + 25 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 0u);
  Raise(c);
  ASSERT_EQ(log_.size(), 1u);
  EXPECT_EQ(log_[0].params.Get(detector_.symbols(), "_ticks"), Value(int64_t{2}));
}

TEST_F(EventDetectorTest, PeriodicRejectsNonPositiveTau) {
  const EventId a = Prim("a");
  const EventId c = Prim("c");
  EXPECT_FALSE(detector_.DefinePeriodic("bad", a, 0, c).ok());
}

// ------------------------------------------------------------ ABSOLUTE

TEST_F(EventDetectorTest, AbsoluteFiresAtPatternInstants) {
  const EventId abs =
      *detector_.DefineAbsolute("abs", testutil::Daily(17));
  Watch(abs);
  detector_.AdvanceTo(MakeTime(2026, 7, 8, 0, 0, 0), &clock_);
  ASSERT_EQ(log_.size(), 2u);  // 17:00 on Jul 6 and Jul 7.
  EXPECT_EQ(log_[0].end, MakeTime(2026, 7, 6, 17, 0, 0));
  EXPECT_EQ(log_[1].end, MakeTime(2026, 7, 7, 17, 0, 0));
}

TEST_F(EventDetectorTest, AbsoluteStopsAfterDeactivation) {
  const EventId abs =
      *detector_.DefineAbsolute("abs", testutil::Daily(17));
  Watch(abs);
  detector_.AdvanceTo(MakeTime(2026, 7, 7, 0, 0, 0), &clock_);
  EXPECT_EQ(log_.size(), 1u);
  ASSERT_TRUE(detector_.DeactivateEvent(abs).ok());
  detector_.AdvanceTo(MakeTime(2026, 7, 10, 0, 0, 0), &clock_);
  EXPECT_EQ(log_.size(), 1u);
}

// ------------------------------------------------- Cascades & plumbing

TEST_F(EventDetectorTest, ReentrantRaiseFromSubscriberCompletesInline) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  std::vector<EventId> order;
  detector_.Subscribe(a, [&](const Occurrence&) {
    order.push_back(a);
    (void)detector_.Raise(b, {});
  });
  detector_.Subscribe(b, [&](const Occurrence&) { order.push_back(b); });
  Raise(a);
  // The cascaded b completed before Raise(a) returned.
  EXPECT_EQ(order, (std::vector<EventId>{a, b}));
}

TEST_F(EventDetectorTest, CompositeOverCompositeDag) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId c = Prim("c");
  const EventId seq = *detector_.DefineSeq("seq", a, b);
  const EventId or_ev = *detector_.DefineOr("or", {seq, c});
  Watch(or_ev);
  Raise(a);
  clock_.Advance(kSecond);
  Raise(b);
  Raise(c);
  EXPECT_EQ(log_.size(), 2u);
}

TEST_F(EventDetectorTest, DeactivatedPrimitiveRejectsRaise) {
  const EventId a = Prim("a");
  ASSERT_TRUE(detector_.DeactivateEvent(a).ok());
  EXPECT_FALSE(detector_.Raise(a, {}).ok());
}

TEST_F(EventDetectorTest, DeactivatedFilterStopsPropagating) {
  const EventId a = Prim("a");
  const EventId f = *detector_.DefineFilter("f", a, {});
  Watch(f);
  Raise(a);
  EXPECT_EQ(log_.size(), 1u);
  ASSERT_TRUE(detector_.DeactivateEvent(f).ok());
  Raise(a);
  EXPECT_EQ(log_.size(), 1u);
}

TEST_F(EventDetectorTest, DeactivatedPlusCancelsPendingTimers) {
  const EventId a = Prim("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 5 * kSecond);
  Watch(plus);
  Raise(a);
  EXPECT_GE(detector_.pending_timer_count(), 1u);
  ASSERT_TRUE(detector_.DeactivateEvent(plus).ok());
  detector_.AdvanceTo(testutil::Noon() + kMinute, &clock_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_F(EventDetectorTest, OccurrenceCountsTracked) {
  const EventId a = Prim("a");
  const EventId f = *detector_.DefineFilter("f", a, {});
  Raise(a);
  Raise(a);
  EXPECT_EQ(detector_.occurrence_count(a), 2u);
  EXPECT_EQ(detector_.occurrence_count(f), 2u);
  EXPECT_EQ(detector_.total_occurrences(), 4u);
}

TEST_F(EventDetectorTest, AdvanceToFiresTimersAtExactInstants) {
  const EventId a = Prim("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 5 * kSecond);
  Time seen_now = 0;
  detector_.Subscribe(plus, [&](const Occurrence&) {
    seen_now = detector_.Now();
  });
  Raise(a);
  detector_.AdvanceTo(testutil::Noon() + kMinute, &clock_);
  // The subscriber observed the clock at the expiry instant, not at the
  // advance target.
  EXPECT_EQ(seen_now, testutil::Noon() + 5 * kSecond);
  EXPECT_EQ(detector_.Now(), testutil::Noon() + kMinute);
}

TEST_F(EventDetectorTest, PollTimersFiresDueTimersAtCurrentTime) {
  const EventId a = Prim("a");
  const EventId plus = *detector_.DefinePlus("plus", a, 5 * kSecond);
  Watch(plus);
  Raise(a);
  // Move the clock without AdvanceTo (wall-clock style), then poll.
  clock_.Advance(10 * kSecond);
  EXPECT_EQ(log_.size(), 0u);
  detector_.PollTimers();
  ASSERT_EQ(log_.size(), 1u);
  // Fire time recorded is the scheduled instant, not the poll instant.
  EXPECT_EQ(log_[0].end, testutil::Noon() + 5 * kSecond);
}

TEST_F(EventDetectorTest, AbsoluteConcreteYearExhausts) {
  auto pattern = TimePattern::Parse("00:00:00/01/01/2020");  // In the past.
  ASSERT_TRUE(pattern.ok());
  const EventId abs = *detector_.DefineAbsolute("past", *pattern);
  Watch(abs);
  EXPECT_EQ(detector_.pending_timer_count(), 0u);  // Nothing scheduled.
  detector_.AdvanceTo(testutil::Noon() + 30 * kDay, &clock_);
  EXPECT_EQ(log_.size(), 0u);
}

TEST_F(EventDetectorTest, PeriodicChronicleKeepsConcurrentWindows) {
  const EventId a = Prim("a");
  const EventId c = Prim("c");
  const EventId per = *detector_.DefinePeriodic(
      "per", a, 10 * kSecond, c, ConsumptionMode::kChronicle);
  Watch(per);
  Raise(a);  // Window 1.
  clock_.Advance(5 * kSecond);
  Raise(a);  // Window 2 (offset by 5s).
  detector_.AdvanceTo(testutil::Noon() + 21 * kSecond, &clock_);
  // W1 ticks at +10,+20; W2 at +15 (and +25 later): 3 so far.
  EXPECT_EQ(log_.size(), 3u);
  Raise(c);  // Chronicle: closes the OLDEST window (W1).
  detector_.AdvanceTo(testutil::Noon() + 26 * kSecond, &clock_);
  EXPECT_EQ(log_.size(), 4u);  // Only W2's +25 tick arrived.
}

TEST_F(EventDetectorTest, NextTimerTimeExposed) {
  const EventId a = Prim("a");
  (void)*detector_.DefinePlus("plus", a, 7 * kSecond);
  EXPECT_FALSE(detector_.NextTimerTime().has_value());
  Raise(a);
  ASSERT_TRUE(detector_.NextTimerTime().has_value());
  EXPECT_EQ(*detector_.NextTimerTime(), testutil::Noon() + 7 * kSecond);
}

TEST_F(EventDetectorTest, SubscriberAddedDuringDispatchSeesNextOnly) {
  const EventId a = Prim("a");
  int late_count = 0;
  detector_.Subscribe(a, [&](const Occurrence&) {
    static bool subscribed = false;
    if (!subscribed) {
      subscribed = true;
      detector_.Subscribe(a, [&](const Occurrence&) { ++late_count; });
    }
  });
  Raise(a);
  EXPECT_EQ(late_count, 0);  // Not called for the occurrence that added it.
  Raise(a);
  EXPECT_EQ(late_count, 1);
}

TEST_F(EventDetectorTest, QuiescentCallbackFiresPerTopLevelCascade) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  int quiescent = 0;
  detector_.SetQuiescentCallback([&] { ++quiescent; });
  detector_.Subscribe(a, [&](const Occurrence&) {
    (void)detector_.Raise(b, {});  // Cascades stay inside one drain.
  });
  Raise(a);
  EXPECT_EQ(quiescent, 1);
  Raise(b);
  EXPECT_EQ(quiescent, 2);
}

TEST_F(EventDetectorTest, RegistryDescribe) {
  const EventId a = Prim("a");
  const EventId b = Prim("b");
  const EventId seq =
      *detector_.DefineSeq("seq", a, b, ConsumptionMode::kChronicle);
  EXPECT_EQ(detector_.registry().Describe(seq), "seq = SEQ(a, b) [chronicle]");
}

}  // namespace
}  // namespace sentinel
