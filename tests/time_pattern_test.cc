#include "event/time_pattern.h"

#include <gtest/gtest.h>

#include "common/calendar.h"
#include "common/rng.h"

namespace sentinel {
namespace {

TEST(TimePatternTest, ParseFullForm) {
  auto p = TimePattern::Parse("10:30:00/12/25/2026");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->hour(), 10);
  EXPECT_EQ(p->minute(), 30);
  EXPECT_EQ(p->second(), 0);
  EXPECT_EQ(p->month(), 12);
  EXPECT_EQ(p->day(), 25);
  EXPECT_EQ(p->year(), 2026);
}

TEST(TimePatternTest, ParseWildcards) {
  auto p = TimePattern::Parse("10:00:00/*/*/*");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->hour(), 10);
  EXPECT_EQ(p->month(), TimePattern::kAny);
  EXPECT_EQ(p->day(), TimePattern::kAny);
  EXPECT_EQ(p->year(), TimePattern::kAny);
}

TEST(TimePatternTest, ParseTimeOnlyDefaultsDateToWildcards) {
  auto p = TimePattern::Parse("09:15:30");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->hour(), 9);
  EXPECT_EQ(p->day(), TimePattern::kAny);
}

TEST(TimePatternTest, ParseErrors) {
  EXPECT_FALSE(TimePattern::Parse("").ok());
  EXPECT_FALSE(TimePattern::Parse("25:00:00").ok());       // Hour range.
  EXPECT_FALSE(TimePattern::Parse("10:60:00").ok());       // Minute range.
  EXPECT_FALSE(TimePattern::Parse("10:00").ok());          // Missing field.
  EXPECT_FALSE(TimePattern::Parse("10:00:00/13/1/2026").ok());  // Month.
  EXPECT_FALSE(TimePattern::Parse("10:00:0a").ok());       // Non-digit.
}

TEST(TimePatternTest, RoundTripToString) {
  const char* texts[] = {"10:00:00/*/*/*", "*:30:00/01/15/2030",
                         "23:59:59/12/31/2026"};
  for (const char* text : texts) {
    auto p = TimePattern::Parse(text);
    ASSERT_TRUE(p.ok()) << text;
    EXPECT_EQ(p->ToString(), text);
  }
}

TEST(TimePatternTest, MatchesDailyPattern) {
  auto p = TimePattern::Parse("10:00:00/*/*/*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Matches(MakeTime(2026, 7, 6, 10, 0, 0)));
  EXPECT_TRUE(p->Matches(MakeTime(1999, 1, 1, 10, 0, 0)));
  EXPECT_FALSE(p->Matches(MakeTime(2026, 7, 6, 10, 0, 1)));
  EXPECT_FALSE(p->Matches(MakeTime(2026, 7, 6, 11, 0, 0)));
}

TEST(TimePatternTest, MatchesIgnoresSubSecond) {
  auto p = TimePattern::Parse("10:00:00/*/*/*");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Matches(MakeTime(2026, 7, 6, 10, 0, 0, 500)));
}

TEST(TimePatternTest, NextMatchSameDay) {
  auto p = TimePattern::Parse("17:00:00/*/*/*");
  ASSERT_TRUE(p.ok());
  const auto next = p->NextMatchAfter(MakeTime(2026, 7, 6, 12, 0, 0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, MakeTime(2026, 7, 6, 17, 0, 0));
}

TEST(TimePatternTest, NextMatchRollsToNextDay) {
  auto p = TimePattern::Parse("10:00:00/*/*/*");
  ASSERT_TRUE(p.ok());
  const auto next = p->NextMatchAfter(MakeTime(2026, 7, 6, 12, 0, 0));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, MakeTime(2026, 7, 7, 10, 0, 0));
}

TEST(TimePatternTest, NextMatchIsStrictlyAfter) {
  auto p = TimePattern::Parse("10:00:00/*/*/*");
  ASSERT_TRUE(p.ok());
  const Time at = MakeTime(2026, 7, 6, 10, 0, 0);
  const auto next = p->NextMatchAfter(at);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, at + kDay);
}

TEST(TimePatternTest, NextMatchConcreteDate) {
  auto p = TimePattern::Parse("00:00:00/12/25/2026");
  ASSERT_TRUE(p.ok());
  const auto next = p->NextMatchAfter(MakeTime(2026, 7, 6));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, MakeTime(2026, 12, 25));
}

TEST(TimePatternTest, NextMatchExhaustsConcretePast) {
  auto p = TimePattern::Parse("00:00:00/01/01/2020");
  ASSERT_TRUE(p.ok());
  EXPECT_FALSE(p->NextMatchAfter(MakeTime(2026, 7, 6)).has_value());
}

TEST(TimePatternTest, NextMatchLeapDay) {
  auto p = TimePattern::Parse("12:00:00/02/29/*");
  ASSERT_TRUE(p.ok());
  const auto next = p->NextMatchAfter(MakeTime(2026, 7, 6));
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, MakeTime(2028, 2, 29, 12, 0, 0));
}

TEST(TimePatternTest, NextMatchWildcardSecondIsNextSecond) {
  auto p = TimePattern::Parse("*:*:*");
  ASSERT_TRUE(p.ok());
  const Time t = MakeTime(2026, 7, 6, 10, 0, 0) + 400 * kMillisecond;
  const auto next = p->NextMatchAfter(t);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ(*next, MakeTime(2026, 7, 6, 10, 0, 1));
}

TEST(TimePatternTest, NextMatchFixedMinuteWildcardHour) {
  auto p = TimePattern::Parse("*:30:00");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(*p->NextMatchAfter(MakeTime(2026, 7, 6, 9, 45, 0)),
            MakeTime(2026, 7, 6, 10, 30, 0));
  EXPECT_EQ(*p->NextMatchAfter(MakeTime(2026, 7, 6, 9, 15, 0)),
            MakeTime(2026, 7, 6, 9, 30, 0));
}

// Property: the returned instant always matches the pattern and is
// strictly after the query point; and no matching whole second exists
// between them (verified on minute-granularity patterns by scanning).
TEST(TimePatternPropertyTest, NextMatchIsEarliest) {
  Rng rng(4242);
  for (int i = 0; i < 300; ++i) {
    const int hour = static_cast<int>(rng.NextBounded(24));
    const int minute = static_cast<int>(rng.NextBounded(60));
    TimePattern p(hour, minute, 0, TimePattern::kAny, TimePattern::kAny,
                  TimePattern::kAny);
    const Time t = MakeTime(2026, 1, 1) +
                   rng.NextInt(0, 400 * kDay / kSecond) * kSecond +
                   rng.NextInt(0, 999999);
    const auto next = p.NextMatchAfter(t);
    ASSERT_TRUE(next.has_value());
    EXPECT_GT(*next, t);
    EXPECT_TRUE(p.Matches(*next));
    // Daily minute-level pattern: the gap can never exceed one day.
    EXPECT_LE(*next - t, kDay);
  }
}

}  // namespace
}  // namespace sentinel
