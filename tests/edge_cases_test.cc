#include <gtest/gtest.h>

#include "core/consistency.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"

namespace sentinel {
namespace {

/// Malformed-input and corner-case sweeps across the engine surface:
/// every public operation must stay fail-safe (deny, never crash, never
/// corrupt state) under hostile or nonsensical parameters.
class EdgeCasesTest : public ::testing::Test {
 protected:
  EdgeCasesTest() : clock_(testutil::Noon()), engine_(&clock_) {
    EXPECT_TRUE(engine_.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

TEST_F(EdgeCasesTest, EmptyStringsAreDenied) {
  EXPECT_FALSE(engine_.CreateSession("", "s1").allowed);
  EXPECT_FALSE(engine_.CreateSession("alice", "").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("", "", "").allowed);
  EXPECT_FALSE(engine_.CheckAccess("", "", "").allowed);
  EXPECT_FALSE(engine_.AssignUser("", "PM").allowed);
  EXPECT_FALSE(engine_.EnableRole("").allowed);
  EXPECT_FALSE(engine_.DisableRole("").allowed);
  EXPECT_FALSE(engine_.DropActiveRole("", "", "").allowed);
  EXPECT_FALSE(engine_.DeleteSession("").allowed);
  EXPECT_FALSE(engine_.DeassignUser("", "").allowed);
}

TEST_F(EdgeCasesTest, OperationsBeforeAnySession) {
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "ledger").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
}

TEST_F(EdgeCasesTest, RepeatedIdenticalRequestsAreStable) {
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(engine_.AddActiveRole("carol", "s1", "PM").allowed);
  }
  // State unchanged: alice can still use her session normally.
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
}

TEST_F(EdgeCasesTest, SessionIdReuseAfterDeletion) {
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
  ASSERT_TRUE(engine_.DeleteSession("s1").allowed);
  // A different user reuses the id; no state leaks from the old session.
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  EXPECT_TRUE(engine_.rbac().SessionRoles("s1").empty());
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "ledger").allowed);
}

TEST_F(EdgeCasesTest, AdvanceToPastIsNoOp) {
  const Time before = engine_.Now();
  engine_.AdvanceTo(before - kHour);  // Backwards: ignored.
  EXPECT_EQ(engine_.Now(), before);
  engine_.AdvanceBy(-5);  // Negative: ignored.
  EXPECT_EQ(engine_.Now(), before);
}

TEST_F(EdgeCasesTest, ContextOnPolicyWithoutContextConstraints) {
  // Raising context events against a context-free policy is harmless.
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
  engine_.SetContext("location", "moon");
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("s1", "PM"));
  EXPECT_EQ(engine_.ContextValue("location"), "moon");
  EXPECT_EQ(engine_.ContextValue("unset"), "");
}

TEST_F(EdgeCasesTest, CaseSensitivityOfNames) {
  // "pm" is not "PM": unknown role, default deny.
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("alice", "s1", "pm").allowed);
  EXPECT_FALSE(engine_.AssignUser("Alice", "PM").allowed);
}

TEST_F(EdgeCasesTest, DisableUnknownAndDoubleDisable) {
  EXPECT_FALSE(engine_.DisableRole("NoSuch").allowed);
  EXPECT_TRUE(engine_.DisableRole("Clerk").allowed);
  // Disabling an already-disabled role is an idempotent allow.
  EXPECT_TRUE(engine_.DisableRole("Clerk").allowed);
  EXPECT_TRUE(engine_.EnableRole("Clerk").allowed);
  EXPECT_TRUE(engine_.EnableRole("Clerk").allowed);
}

TEST_F(EdgeCasesTest, DisabledRoleBlocksNewActivationsEverywhere) {
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
  ASSERT_TRUE(engine_.DisableRole("PC").allowed);
  // Existing instance was force-deactivated; new ones denied.
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "PC"));
  EXPECT_FALSE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
  ASSERT_TRUE(engine_.EnableRole("PC").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
}

TEST_F(EdgeCasesTest, LongUnicodeishNamesSurvive) {
  // Not valid policy members, but must not corrupt anything.
  const std::string weird(300, 'x');
  EXPECT_FALSE(engine_.CreateSession(weird, weird).allowed);
  EXPECT_FALSE(engine_.AddActiveRole(weird, weird, weird).allowed);
  EXPECT_FALSE(engine_.CheckAccess(weird, "read", "ledger").allowed);
}

// --------------------------------- Compensation interplay corner cases

TEST(EdgeCaseScenarioTest, CardinalityAndUserCapBothTrigger) {
  auto policy = PolicyParser::Parse(R"(
policy "both"
role L { cardinality: 1 }
role M {}
user u { assign: L, M  max-active: 1 }
user v { assign: L }
)");
  ASSERT_TRUE(policy.ok());
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(*policy).ok());
  ASSERT_TRUE(engine.CreateSession("u", "su").allowed);
  ASSERT_TRUE(engine.CreateSession("v", "sv").allowed);
  // u activates M: user-cap now saturated.
  ASSERT_TRUE(engine.AddActiveRole("u", "su", "M").allowed);
  // u tries L: cardinality fine (0<1), user cap breached -> UAC denies.
  Decision d = engine.AddActiveRole("u", "su", "L");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.rule, "UAC.u");
  EXPECT_EQ(engine.rbac().db().ActiveSessionCount("L"), 0);
  // v takes the single L slot; u dropping M then trying L hits CC.
  ASSERT_TRUE(engine.AddActiveRole("v", "sv", "L").allowed);
  ASSERT_TRUE(engine.DropActiveRole("u", "su", "M").allowed);
  Decision d2 = engine.AddActiveRole("u", "su", "L");
  EXPECT_FALSE(d2.allowed);
  EXPECT_EQ(d2.rule, "CC.L");
}

TEST(EdgeCaseScenarioTest, DurationExpiryFreesCardinalitySlot) {
  auto policy = PolicyParser::Parse(R"(
policy "durcard"
role L { cardinality: 1  max-activation: 30m }
user u1 { assign: L }
user u2 { assign: L }
)");
  ASSERT_TRUE(policy.ok());
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(*policy).ok());
  ASSERT_TRUE(engine.CreateSession("u1", "s1").allowed);
  ASSERT_TRUE(engine.CreateSession("u2", "s2").allowed);
  ASSERT_TRUE(engine.AddActiveRole("u1", "s1", "L").allowed);
  EXPECT_FALSE(engine.AddActiveRole("u2", "s2", "L").allowed);
  engine.AdvanceBy(31 * kMinute);  // u1's activation expires.
  EXPECT_TRUE(engine.AddActiveRole("u2", "s2", "L").allowed);
}

TEST(EdgeCaseScenarioTest, RejectedActivationDoesNotScheduleExpiry) {
  auto policy = PolicyParser::Parse(R"(
policy "rej"
role L { cardinality: 1  max-activation: 30m }
user u1 { assign: L }
user u2 { assign: L }
)");
  ASSERT_TRUE(policy.ok());
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(*policy).ok());
  ASSERT_TRUE(engine.CreateSession("u1", "s1").allowed);
  ASSERT_TRUE(engine.CreateSession("u2", "s2").allowed);
  ASSERT_TRUE(engine.AddActiveRole("u1", "s1", "L").allowed);
  // Rejected by CC; its provisional PLUS expiry must have been cancelled.
  ASSERT_FALSE(engine.AddActiveRole("u2", "s2", "L").allowed);
  // u1 drops; u2 re-activates at +20m. The phantom expiry from the
  // rejected attempt (would fire at +30m) must not kill u2's activation.
  ASSERT_TRUE(engine.DropActiveRole("u1", "s1", "L").allowed);
  engine.AdvanceBy(20 * kMinute);
  ASSERT_TRUE(engine.AddActiveRole("u2", "s2", "L").allowed);
  engine.AdvanceBy(15 * kMinute);  // +35m from start, +15m from u2's add.
  EXPECT_TRUE(engine.rbac().db().IsSessionRoleActive("s2", "L"));
  engine.AdvanceBy(20 * kMinute);  // +35m from u2's add: now it expires.
  EXPECT_FALSE(engine.rbac().db().IsSessionRoleActive("s2", "L"));
}

// ----------------------------------------- Pool verification under load

TEST(GeneratedPoolTest, RichGeneratedPoliciesVerifyExactly) {
  for (uint64_t seed : {5u, 6u, 7u}) {
    PolicyGenParams params;
    params.seed = seed;
    params.num_roles = 60;
    params.num_users = 80;
    params.hierarchy_prob = 0.6;
    params.cardinality_frac = 0.3;
    params.duration_frac = 0.3;
    params.shift_frac = 0.3;
    params.context_frac = 0.3;
    params.user_cap_frac = 0.3;
    const Policy policy = GeneratePolicy(params);
    SimulatedClock clock(testutil::Noon());
    AuthorizationEngine engine(&clock);
    ASSERT_TRUE(engine.LoadPolicy(policy).ok()) << "seed " << seed;
    const auto issues = VerifyGeneratedPool(engine);
    for (const ConsistencyIssue& issue : issues) {
      ADD_FAILURE() << "seed " << seed << ": " << issue.ToString();
    }
  }
}

}  // namespace
}  // namespace sentinel
