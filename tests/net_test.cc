// Socket-level end-to-end tests for the epoll reactor: real TCP
// connections against a live AuthorizationService, covering the happy
// path (typed verdicts, pipelining), every protocol-error edge the
// torture suite pins at the decoder level — now through actual sockets —
// idle harvesting, graceful drain, and a multi-client stress arm meant to
// run under TSan (N client threads vs one reactor vs shard threads vs
// concurrent admin churn).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/client.h"
#include "net/server.h"
#include "workload/policy_gen.h"

namespace sentinel {
namespace {

using net::WireClient;
using net::WireServer;

constexpr int kUsers = 4;

std::string SessionOf(int user) { return "sess" + std::to_string(user); }

/// Flat policy: every user holds `worker` (read ledger). `auditor`
/// (read audit.log) exists for the admin-churn stress arm.
Policy NetPolicy() {
  Policy policy("net-test");
  RoleSpec worker;
  worker.name = "worker";
  worker.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(worker));
  RoleSpec auditor;
  auditor.name = "auditor";
  auditor.permissions.insert(Permission{"read", "audit.log"});
  (void)policy.AddRole(std::move(auditor));
  for (int u = 0; u < kUsers; ++u) {
    UserSpec user;
    user.name = SyntheticUserName(u);
    user.assignments.insert("worker");
    user.assignments.insert("auditor");
    (void)policy.AddUser(std::move(user));
  }
  return policy;
}

AccessRequest ReadLedger(int user) {
  return AccessRequest{SyntheticUserName(user), SessionOf(user), "read",
                       "ledger", ""};
}

AccessRequest WriteLedger(int user) {
  return AccessRequest{SyntheticUserName(user), SessionOf(user), "write",
                       "ledger", ""};
}

class NetTest : public ::testing::Test {
 protected:
  void StartService(ServiceConfig config) {
    service_ = std::make_unique<AuthorizationService>(config);
    ASSERT_TRUE(service_->LoadPolicy(NetPolicy()).ok());
    for (int u = 0; u < kUsers; ++u) {
      ASSERT_TRUE(
          service_->CreateSession(SyntheticUserName(u), SessionOf(u)).ok());
      ASSERT_TRUE(service_
                      ->AddActiveRole(SyntheticUserName(u), SessionOf(u),
                                      "worker")
                      .ok());
    }
  }

  void StartServer(net::ServerConfig net_config = {}) {
    server_ = std::make_unique<WireServer>(service_.get(), net_config);
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  void StartDefault() {
    ServiceConfig config;
    config.num_shards = 2;
    config.start_time = MakeTime(2026, 7, 6, 12, 0, 0);
    StartService(config);
    StartServer();
  }

  std::unique_ptr<WireClient> Connect() {
    auto connected = WireClient::Connect("127.0.0.1", server_->port());
    EXPECT_TRUE(connected.ok()) << connected.status().message();
    return std::move(connected).value();
  }

  /// Polls server stats until `predicate` holds or ~2s pass.
  template <typename Predicate>
  bool WaitFor(Predicate predicate) {
    for (int i = 0; i < 200; ++i) {
      if (predicate()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return predicate();
  }

  std::unique_ptr<AuthorizationService> service_;
  std::unique_ptr<WireServer> server_;
};

TEST_F(NetTest, StartsOnEphemeralPortAndStops) {
  StartDefault();
  const uint16_t port = server_->port();
  EXPECT_NE(port, 0);
  server_->Stop();
  EXPECT_FALSE(WireClient::Connect("127.0.0.1", port, 200).ok());
}

TEST_F(NetTest, VerdictsCarryEveryTypedField) {
  StartDefault();
  auto client = Connect();

  auto allowed = client->Check(ReadLedger(0));
  ASSERT_TRUE(allowed.ok()) << allowed.status().message();
  EXPECT_TRUE(allowed.value().allowed);
  EXPECT_EQ(allowed.value().outcome, AccessOutcome::kDecided);
  EXPECT_FALSE(allowed.value().rule.empty())
      << "the deciding OWTE rule crosses the wire";
  EXPECT_GT(allowed.value().epoch, 0u)
      << "policy load + session setup bumped the admin epoch";

  auto denied = client->Check(WriteLedger(0));
  ASSERT_TRUE(denied.ok()) << denied.status().message();
  EXPECT_FALSE(denied.value().allowed);
  EXPECT_EQ(denied.value().outcome, AccessOutcome::kDecided);
  EXPECT_FALSE(denied.value().reason.empty());

  // Both verdicts match what an in-process caller sees.
  const AccessDecision local = service_->CheckAccess(ReadLedger(0));
  EXPECT_EQ(local.allowed, allowed.value().allowed);
  EXPECT_EQ(local.rule, allowed.value().rule);
}

TEST_F(NetTest, PipelinedBatchAlignsPositionally) {
  StartDefault();
  auto client = Connect();
  std::vector<AccessRequest> requests;
  for (int i = 0; i < 64; ++i) {
    requests.push_back(i % 2 == 0 ? ReadLedger(i % kUsers)
                                  : WriteLedger(i % kUsers));
  }
  auto decisions = client->CheckBatch(requests);
  ASSERT_TRUE(decisions.ok()) << decisions.status().message();
  ASSERT_EQ(decisions.value().size(), requests.size());
  for (size_t i = 0; i < decisions.value().size(); ++i) {
    EXPECT_EQ(decisions.value()[i].allowed, i % 2 == 0) << "index " << i;
  }
  // The whole pipeline folded into far fewer service batches than
  // requests (one per reactor sweep chunk, not one per request).
  EXPECT_LT(server_->stats().batches, 64u);
}

// Regression: a pipeline deeper than max_batch leaves complete frames in
// the decoder after the sweep's chunk fills — with the bytes already off
// the socket no readable event re-announces them, so the reactor's
// redrain pass must answer them (previously they hung until idle close).
TEST_F(NetTest, PipeliningBeyondMaxBatchStillAnswersEverything) {
  ServiceConfig config;
  config.num_shards = 2;
  config.start_time = MakeTime(2026, 7, 6, 12, 0, 0);
  StartService(config);
  net::ServerConfig net_config;
  net_config.max_batch = 8;
  StartServer(net_config);

  auto client = Connect();
  std::vector<AccessRequest> requests;
  for (int i = 0; i < 100; ++i) requests.push_back(ReadLedger(i % kUsers));
  auto decisions = client->CheckBatch(requests);
  ASSERT_TRUE(decisions.ok()) << decisions.status().message();
  ASSERT_EQ(decisions.value().size(), requests.size());
  for (size_t i = 0; i < decisions.value().size(); ++i) {
    EXPECT_TRUE(decisions.value()[i].allowed) << "index " << i;
  }
  // The backlog dispatched in max_batch chunks, not one giant batch.
  EXPECT_GE(server_->stats().batches, 100u / 8u);
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

TEST_F(NetTest, SingleByteDribbleOverSocket) {
  StartDefault();
  auto client = Connect();
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(41, ReadLedger(1), &bytes).ok());
  ASSERT_TRUE(client->SendRaw(bytes, /*chunk=*/1).ok());
  auto frame = client->ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, wire::MsgType::kDecision);
  wire::DecisionMsg msg;
  wire::ProtocolError error;
  ASSERT_TRUE(wire::DecodeDecision(frame.value(), &msg, &error));
  EXPECT_EQ(msg.request_id, 41u);
  EXPECT_TRUE(msg.decision.allowed);
}

TEST_F(NetTest, OversizedLengthPrefixIsFatal) {
  StartDefault();
  auto client = Connect();
  std::string bytes;
  wire::PutU32(wire::kMaxFrameBytes + 1, &bytes);
  ASSERT_TRUE(client->SendRaw(bytes).ok());
  auto frame = client->ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, wire::MsgType::kError);
  wire::ErrorMsg msg;
  wire::ProtocolError error;
  ASSERT_TRUE(wire::DecodeError(frame.value(), &msg, &error));
  EXPECT_EQ(msg.code, wire::WireError::kFrameTooLarge);
  EXPECT_EQ(msg.request_id, 0u) << "framing errors are not request-scoped";
  // Fatal: the server closes after flushing the error.
  EXPECT_FALSE(client->ReadRawFrame().ok());
  EXPECT_TRUE(client->eof());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(NetTest, UnknownVersionIsFatal) {
  StartDefault();
  auto client = Connect();
  std::string bytes;
  wire::EncodePing(1, &bytes);
  bytes[wire::kLengthPrefixBytes] = char(wire::kWireVersion + 1);
  ASSERT_TRUE(client->SendRaw(bytes).ok());
  auto frame = client->ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, wire::MsgType::kError);
  wire::ErrorMsg msg;
  wire::ProtocolError error;
  ASSERT_TRUE(wire::DecodeError(frame.value(), &msg, &error));
  EXPECT_EQ(msg.code, wire::WireError::kUnsupportedVersion);
  EXPECT_EQ(msg.request_id, 0u) << "framing errors are not request-scoped";
  EXPECT_FALSE(client->ReadRawFrame().ok());
  EXPECT_TRUE(client->eof());
}

// Regression: a framing error following a valid frame must not echo the
// previous frame's correlation id — framing-level errors carry id 0.
TEST_F(NetTest, FramingErrorDoesNotEchoStaleRequestId) {
  StartDefault();
  auto client = Connect();
  std::string bytes;
  wire::EncodePing(7, &bytes);
  wire::PutU32(wire::kMaxFrameBytes + 1, &bytes);  // poison right behind it
  ASSERT_TRUE(client->SendRaw(bytes).ok());
  auto pong = client->ReadRawFrame();
  ASSERT_TRUE(pong.ok()) << pong.status().message();
  EXPECT_EQ(pong.value().type, wire::MsgType::kPong);
  auto frame = client->ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, wire::MsgType::kError);
  wire::ErrorMsg msg;
  wire::ProtocolError error;
  ASSERT_TRUE(wire::DecodeError(frame.value(), &msg, &error));
  EXPECT_EQ(msg.code, wire::WireError::kFrameTooLarge);
  EXPECT_EQ(msg.request_id, 0u) << "must not echo the ping's id 7";
  EXPECT_FALSE(client->ReadRawFrame().ok());
  EXPECT_TRUE(client->eof());
}

TEST_F(NetTest, InvalidDeadlineIsRequestScopedAndConnectionSurvives) {
  StartDefault();
  auto client = Connect();
  AccessRequest bad = ReadLedger(0);
  bad.deadline = -7;  // negative non-sentinel: encoder ships it, wire rejects
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(11, bad, &bytes).ok());
  ASSERT_TRUE(client->SendRaw(bytes).ok());
  auto frame = client->ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, wire::MsgType::kError);
  wire::ErrorMsg msg;
  wire::ProtocolError error;
  ASSERT_TRUE(wire::DecodeError(frame.value(), &msg, &error));
  EXPECT_EQ(msg.code, wire::WireError::kInvalidDeadline);
  EXPECT_EQ(msg.request_id, 11u);

  // Same connection keeps working — and the sentinel itself is fine.
  AccessRequest patient = ReadLedger(0);
  patient.deadline = AccessRequest::kNoDeadline;
  auto decision = client->Check(patient);
  ASSERT_TRUE(decision.ok()) << decision.status().message();
  EXPECT_TRUE(decision.value().allowed);
}

TEST_F(NetTest, UnknownMessageTypeSurvives) {
  StartDefault();
  auto client = Connect();
  std::string bytes;
  wire::EncodePing(21, &bytes);
  bytes[wire::kLengthPrefixBytes + 1] = '\x7f';  // a type id from the future
  ASSERT_TRUE(client->SendRaw(bytes).ok());
  auto frame = client->ReadRawFrame();
  ASSERT_TRUE(frame.ok()) << frame.status().message();
  ASSERT_EQ(frame.value().type, wire::MsgType::kError);
  wire::ErrorMsg msg;
  wire::ProtocolError error;
  ASSERT_TRUE(wire::DecodeError(frame.value(), &msg, &error));
  EXPECT_EQ(msg.code, wire::WireError::kUnknownMessageType);
  EXPECT_EQ(msg.request_id, 21u);
  EXPECT_TRUE(client->Ping().ok()) << "framing stayed intact";
}

TEST_F(NetTest, TruncatedTrailingFrameCountsAsProtocolError) {
  StartDefault();
  {
    auto client = Connect();
    std::string bytes;
    ASSERT_TRUE(wire::EncodeCheckRequest(1, ReadLedger(0), &bytes).ok());
    std::string tail;
    ASSERT_TRUE(wire::EncodeCheckRequest(2, ReadLedger(1), &tail).ok());
    bytes += tail.substr(0, tail.size() / 2);
    ASSERT_TRUE(client->SendRaw(bytes).ok());
    // The complete first request is still answered.
    auto frame = client->ReadRawFrame();
    ASSERT_TRUE(frame.ok()) << frame.status().message();
    EXPECT_EQ(frame.value().type, wire::MsgType::kDecision);
  }  // client destructor closes mid-frame
  EXPECT_TRUE(WaitFor([&] {
    return server_->stats().protocol_errors >= 1;
  })) << "EOF with a truncated trailing frame must count";
}

// At the connection cap the listener is de-registered from epoll (a
// ready listener the reactor refuses to accept from would spin it at
// 100% CPU); closing a connection must re-arm it so waiting connects in
// the backlog get accepted.
TEST_F(NetTest, ConnectionCapResumesAcceptingAfterClose) {
  ServiceConfig config;
  config.num_shards = 1;
  config.start_time = MakeTime(2026, 7, 6, 12, 0, 0);
  StartService(config);
  net::ServerConfig net_config;
  net_config.max_connections = 2;
  StartServer(net_config);

  auto first = Connect();
  auto second = Connect();
  ASSERT_TRUE(first->Ping().ok());
  ASSERT_TRUE(second->Ping().ok());
  ASSERT_TRUE(WaitFor([&] { return server_->stats().accepted == 2; }));

  // Third TCP connect completes via the kernel backlog but the reactor,
  // at cap, must not accept it yet.
  auto third = Connect();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(server_->stats().accepted, 2u);

  first->Close();
  EXPECT_TRUE(WaitFor([&] { return server_->stats().accepted == 3; }))
      << "freed slot must re-arm the listener";
  EXPECT_TRUE(third->Ping().ok());
}

TEST_F(NetTest, IdleConnectionsAreHarvested) {
  ServiceConfig config;
  config.num_shards = 1;
  config.start_time = MakeTime(2026, 7, 6, 12, 0, 0);
  StartService(config);
  net::ServerConfig net_config;
  net_config.idle_timeout_ms = 100;
  StartServer(net_config);

  auto client = Connect();
  ASSERT_TRUE(client->Ping().ok());
  EXPECT_TRUE(WaitFor([&] { return server_->stats().idle_closed >= 1; }));
  EXPECT_FALSE(client->Ping().ok()) << "server hung up on the idler";
  EXPECT_TRUE(client->eof());
}

TEST_F(NetTest, GracefulStopDrainsInFlightWork) {
  StartDefault();
  auto client = Connect();
  std::vector<AccessRequest> requests(128, ReadLedger(2));
  auto decisions = client->CheckBatch(requests);
  ASSERT_TRUE(decisions.ok()) << decisions.status().message();
  server_->Stop();
  const net::ServerStats stats = server_->stats();
  EXPECT_EQ(stats.requests, 128u);
  EXPECT_EQ(stats.decisions, 128u)
      << "every request received before Stop() was answered";
  EXPECT_FALSE(client->Check(ReadLedger(0)).ok())
      << "post-stop traffic fails, it does not hang";
}

// The TSan arm: concurrent clients + reactor + shard threads + admin
// churn through the epoch barrier, with the zero-hop fastpath on so the
// cache-snapshot handoff is exercised across the wire too.
TEST_F(NetTest, ConcurrentClientsWithAdminChurn) {
  ServiceConfig config;
  config.num_shards = 2;
  config.start_time = MakeTime(2026, 7, 6, 12, 0, 0);
  config.decision_cache_capacity = 1024;
  config.decision_cache_fastpath = true;
  StartService(config);
  StartServer();

  constexpr int kClients = 4;
  constexpr int kPerClient = 200;
  std::atomic<uint64_t> decided{0};
  std::atomic<uint64_t> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto connected = WireClient::Connect("127.0.0.1", server_->port());
      if (!connected.ok()) {
        ++failures;
        return;
      }
      auto client = std::move(connected).value();
      for (int i = 0; i < kPerClient; ++i) {
        if (i % 8 == 7) {
          // A pipelined burst in the middle of the closed loop.
          std::vector<AccessRequest> burst(8, ReadLedger(c));
          auto decisions = client->CheckBatch(burst);
          if (!decisions.ok()) {
            ++failures;
            return;
          }
          for (const AccessDecision& decision : decisions.value()) {
            if (decision.outcome == AccessOutcome::kDecided &&
                decision.allowed) {
              ++decided;
            } else {
              ++failures;
            }
          }
          continue;
        }
        auto decision = client->Check(i % 2 == 0 ? ReadLedger(c)
                                                 : WriteLedger(c));
        if (!decision.ok() ||
            decision.value().outcome != AccessOutcome::kDecided) {
          ++failures;
          return;
        }
        if (decision.value().allowed != (i % 2 == 0)) ++failures;
        ++decided;
      }
    });
  }

  // Admin churn: toggle an unrelated role through the epoch barrier while
  // the wire traffic flows. Every toggle invalidates cache generations.
  std::atomic<bool> stop_churn{false};
  std::thread churn([&] {
    int flips = 0;
    while (!stop_churn.load(std::memory_order_acquire)) {
      const std::string user = SyntheticUserName(0);
      if (flips % 2 == 0) {
        (void)service_->AddActiveRole(user, SessionOf(0), "auditor");
      } else {
        (void)service_->DropActiveRole(user, SessionOf(0), "auditor");
      }
      ++flips;
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  for (std::thread& thread : clients) thread.join();
  stop_churn.store(true, std::memory_order_release);
  churn.join();

  EXPECT_EQ(failures.load(), 0u);
  // Every 8th iteration answers a burst of 8 instead of a single check.
  constexpr uint64_t kPerClientDecided =
      (kPerClient - kPerClient / 8) + (kPerClient / 8) * 8;
  EXPECT_EQ(decided.load(), kClients * kPerClientDecided);
  EXPECT_EQ(server_->stats().protocol_errors, 0u);
}

}  // namespace
}  // namespace sentinel
