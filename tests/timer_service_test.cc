#include "event/timer_service.h"

#include <gtest/gtest.h>

#include <vector>

namespace sentinel {
namespace {

TEST(TimerServiceTest, FiresInTimeOrder) {
  TimerService timers;
  std::vector<int> fired;
  timers.Schedule(30, [&](TimerId, Time) { fired.push_back(3); });
  timers.Schedule(10, [&](TimerId, Time) { fired.push_back(1); });
  timers.Schedule(20, [&](TimerId, Time) { fired.push_back(2); });
  while (timers.FireDueOne(100)) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerServiceTest, SameInstantFiresInScheduleOrder) {
  TimerService timers;
  std::vector<int> fired;
  timers.Schedule(10, [&](TimerId, Time) { fired.push_back(1); });
  timers.Schedule(10, [&](TimerId, Time) { fired.push_back(2); });
  timers.Schedule(10, [&](TimerId, Time) { fired.push_back(3); });
  while (timers.FireDueOne(10)) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
}

TEST(TimerServiceTest, DoesNotFireEarly) {
  TimerService timers;
  bool fired = false;
  timers.Schedule(100, [&](TimerId, Time) { fired = true; });
  EXPECT_FALSE(timers.FireDueOne(99));
  EXPECT_FALSE(fired);
  EXPECT_TRUE(timers.FireDueOne(100));
  EXPECT_TRUE(fired);
}

TEST(TimerServiceTest, CallbackReceivesFireTimeNotNow) {
  TimerService timers;
  Time seen = 0;
  timers.Schedule(50, [&](TimerId, Time t) { seen = t; });
  EXPECT_TRUE(timers.FireDueOne(500));
  EXPECT_EQ(seen, 50);
}

TEST(TimerServiceTest, CancelPreventsFiring) {
  TimerService timers;
  bool fired = false;
  const TimerId id = timers.Schedule(10, [&](TimerId, Time) { fired = true; });
  timers.Cancel(id);
  while (timers.FireDueOne(100)) {
  }
  EXPECT_FALSE(fired);
  EXPECT_EQ(timers.pending_count(), 0u);
}

TEST(TimerServiceTest, CancelIsIdempotentAndSafeAfterFire) {
  TimerService timers;
  const TimerId id = timers.Schedule(10, [](TimerId, Time) {});
  EXPECT_TRUE(timers.FireDueOne(10));
  timers.Cancel(id);  // Already fired: no-op.
  timers.Cancel(999);  // Unknown: no-op.
  EXPECT_FALSE(timers.FireDueOne(100));
}

TEST(TimerServiceTest, NextFireTimeSkipsCancelled) {
  TimerService timers;
  const TimerId early = timers.Schedule(10, [](TimerId, Time) {});
  timers.Schedule(20, [](TimerId, Time) {});
  timers.Cancel(early);
  ASSERT_TRUE(timers.NextFireTime().has_value());
  EXPECT_EQ(*timers.NextFireTime(), 20);
}

TEST(TimerServiceTest, NextFireTimeEmpty) {
  TimerService timers;
  EXPECT_FALSE(timers.NextFireTime().has_value());
}

TEST(TimerServiceTest, ReschedulingFromCallback) {
  TimerService timers;
  int count = 0;
  std::function<void(TimerId, Time)> tick = [&](TimerId, Time t) {
    if (++count < 5) timers.Schedule(t + 10, tick);
  };
  timers.Schedule(10, tick);
  while (timers.FireDueOne(1000)) {
  }
  EXPECT_EQ(count, 5);
}

TEST(TimerServiceTest, PendingCountTracksCancellations) {
  TimerService timers;
  const TimerId a = timers.Schedule(10, [](TimerId, Time) {});
  timers.Schedule(20, [](TimerId, Time) {});
  EXPECT_EQ(timers.pending_count(), 2u);
  timers.Cancel(a);
  EXPECT_EQ(timers.pending_count(), 1u);
}

}  // namespace
}  // namespace sentinel
