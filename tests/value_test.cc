#include "common/value.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.ToString(), "null");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(true).AsBool(), true);
  EXPECT_EQ(Value(int64_t{7}).AsInt(), 7);
  EXPECT_DOUBLE_EQ(Value(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value("hi").AsString(), "hi");
}

TEST(ValueTest, CrossTypeCoercions) {
  EXPECT_EQ(Value(int64_t{1}).AsBool(), true);
  EXPECT_EQ(Value(int64_t{0}).AsBool(), false);
  EXPECT_EQ(Value(true).AsInt(), 1);
  EXPECT_EQ(Value(2.9).AsInt(), 2);
  EXPECT_DOUBLE_EQ(Value(int64_t{3}).AsDouble(), 3.0);
}

TEST(ValueTest, FallbacksOnMismatch) {
  EXPECT_EQ(Value("text").AsInt(5), 5);
  EXPECT_EQ(Value(int64_t{1}).AsString(), "");
  EXPECT_EQ(Value().AsBool(true), true);
}

TEST(ValueTest, Equality) {
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_FALSE(Value("a") == Value("b"));
  EXPECT_FALSE(Value(int64_t{1}) == Value(true));  // Distinct alternatives.
  EXPECT_EQ(Value(), Value());
}

TEST(ValueTest, ToStringForms) {
  EXPECT_EQ(Value(true).ToString(), "true");
  EXPECT_EQ(Value(int64_t{42}).ToString(), "42");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
}

TEST(ParamMapTest, ToStringIsSortedAndReadable) {
  ParamMap params;
  params["user"] = Value("bob");
  params["count"] = Value(int64_t{3});
  EXPECT_EQ(ParamMapToString(params), "{count=3, user=\"bob\"}");
  EXPECT_EQ(ParamMapToString({}), "{}");
}

TEST(DurationConstantsTest, Arithmetic) {
  EXPECT_EQ(kSecond, 1000 * kMillisecond);
  EXPECT_EQ(kMinute, 60 * kSecond);
  EXPECT_EQ(kHour, 60 * kMinute);
  EXPECT_EQ(kDay, 24 * kHour);
}

}  // namespace
}  // namespace sentinel
