#include "core/report.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

class ReportTest : public ::testing::Test {
 protected:
  ReportTest() : clock_(testutil::Noon()), engine_(&clock_) {
    EXPECT_TRUE(engine_.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

TEST_F(ReportTest, FreshEngineReportsBaseline) {
  const std::string report = GenerateAdminReport(engine_);
  EXPECT_NE(report.find("policy: \"enterprise-xyz\" (5 roles, 3 users)"),
            std::string::npos);
  EXPECT_NE(report.find("total: 0  denials: 0"), std::string::npos);
  EXPECT_NE(report.find("administrative: 4"), std::string::npos);
  EXPECT_NE(report.find("security alerts (0)"), std::string::npos);
  EXPECT_NE(report.find("(none in the audit trail)"), std::string::npos);
}

TEST_F(ReportTest, ReflectsActivityAndDenials) {
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
  (void)engine_.AddActiveRole("carol", "s1", "PM");  // Denied.
  const std::string report = GenerateAdminReport(engine_);
  EXPECT_NE(report.find("total: 3  denials: 1"), std::string::npos);
  EXPECT_NE(report.find("s1 (alice): PM"), std::string::npos);
  EXPECT_NE(report.find("AAR.PM: Access Denied Cannot Activate"),
            std::string::npos);
}

TEST_F(ReportTest, ListsDisabledRolesAndRules) {
  ASSERT_TRUE(engine_.DisableRole("Clerk").allowed);
  ASSERT_TRUE(engine_.rule_manager().SetEnabled("CA.global", false).ok());
  const std::string report = GenerateAdminReport(engine_);
  EXPECT_NE(report.find("disabled: 1 Clerk"), std::string::npos);
  EXPECT_NE(report.find("DISABLED rules: 1 — CA.global"),
            std::string::npos);
}

TEST_F(ReportTest, OptionsControlSections) {
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ReportOptions options;
  options.include_sessions = false;
  options.recent_denials = 0;
  const std::string report = GenerateAdminReport(engine_, options);
  EXPECT_EQ(report.find("-- sessions"), std::string::npos);
  EXPECT_EQ(report.find("-- recent denials"), std::string::npos);
}

TEST_F(ReportTest, AlertsAppearInReport) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  auto policy = PolicyParser::Parse(R"(
policy "sec"
role A { permission: read(x) }
user u { assign: A }
threshold guard { count: 2  window: 60s }
)");
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(engine.LoadPolicy(*policy).ok());
  ASSERT_TRUE(engine.CreateSession("u", "s1").allowed);
  CapturingLogSink sink;  // Silence the alert log line.
  (void)engine.CheckAccess("s1", "write", "x");
  (void)engine.CheckAccess("s1", "write", "x");
  const std::string report = GenerateAdminReport(engine);
  EXPECT_NE(report.find("security alerts (1)"), std::string::npos);
  EXPECT_NE(report.find("[guard]"), std::string::npos);
}

}  // namespace
}  // namespace sentinel
