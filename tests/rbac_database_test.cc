#include "rbac/database.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

class RbacDatabaseTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.AddUser("bob").ok());
    ASSERT_TRUE(db_.AddRole("R1").ok());
  }
  RbacDatabase db_;
};

TEST_F(RbacDatabaseTest, ElementSets) {
  EXPECT_TRUE(db_.HasUser("bob"));
  EXPECT_FALSE(db_.HasUser("alice"));
  EXPECT_TRUE(db_.AddUser("bob").IsAlreadyExists());
  EXPECT_TRUE(db_.AddUser("").IsInvalidArgument());
  EXPECT_TRUE(db_.DeleteUser("ghost").IsNotFound());
  EXPECT_TRUE(db_.AddRole("R1").IsAlreadyExists());
}

TEST_F(RbacDatabaseTest, AssignmentRelation) {
  ASSERT_TRUE(db_.Assign("bob", "R1").ok());
  EXPECT_TRUE(db_.IsAssigned("bob", "R1"));
  EXPECT_EQ(db_.AssignedRoles("bob").count("R1"), 1u);
  EXPECT_EQ(db_.AssignedUsers("R1").count("bob"), 1u);
  EXPECT_TRUE(db_.Assign("bob", "R1").IsAlreadyExists());
  EXPECT_TRUE(db_.Assign("ghost", "R1").IsNotFound());
  EXPECT_TRUE(db_.Assign("bob", "ghost").IsNotFound());
  ASSERT_TRUE(db_.Deassign("bob", "R1").ok());
  EXPECT_FALSE(db_.IsAssigned("bob", "R1"));
  EXPECT_TRUE(db_.Deassign("bob", "R1").IsNotFound());
}

TEST_F(RbacDatabaseTest, PermissionRelationImplicitlyRegistersOpsObjects) {
  const Permission read{"read", "ledger"};
  ASSERT_TRUE(db_.Grant(read, "R1").ok());
  EXPECT_TRUE(db_.IsGranted(read, "R1"));
  EXPECT_TRUE(db_.HasOperation("read"));
  EXPECT_TRUE(db_.HasObject("ledger"));
  EXPECT_TRUE(db_.Grant(read, "R1").IsAlreadyExists());
  EXPECT_EQ(db_.RolePermissions("R1").size(), 1u);
  ASSERT_TRUE(db_.Revoke(read, "R1").ok());
  EXPECT_FALSE(db_.IsGranted(read, "R1"));
  EXPECT_TRUE(db_.Revoke(read, "R1").IsNotFound());
}

TEST_F(RbacDatabaseTest, SessionsLifecycle) {
  ASSERT_TRUE(db_.CreateSession("bob", "s1").ok());
  EXPECT_TRUE(db_.HasSession("s1"));
  EXPECT_TRUE(db_.CreateSession("bob", "s1").IsAlreadyExists());
  EXPECT_TRUE(db_.CreateSession("ghost", "s2").IsNotFound());
  auto info = db_.GetSession("s1");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ((*info)->user, "bob");
  EXPECT_EQ(db_.UserSessions("bob").count("s1"), 1u);
  ASSERT_TRUE(db_.DeleteSession("s1").ok());
  EXPECT_FALSE(db_.HasSession("s1"));
  EXPECT_TRUE(db_.DeleteSession("s1").IsNotFound());
}

TEST_F(RbacDatabaseTest, SessionRolesAndActiveCounts) {
  ASSERT_TRUE(db_.CreateSession("bob", "s1").ok());
  ASSERT_TRUE(db_.AddSessionRole("s1", "R1").ok());
  EXPECT_TRUE(db_.IsSessionRoleActive("s1", "R1"));
  EXPECT_EQ(db_.ActiveSessionCount("R1"), 1);
  EXPECT_TRUE(db_.AddSessionRole("s1", "R1").IsAlreadyExists());
  EXPECT_TRUE(db_.AddSessionRole("s1", "ghost").IsNotFound());
  EXPECT_TRUE(db_.AddSessionRole("ghost", "R1").IsNotFound());
  ASSERT_TRUE(db_.DropSessionRole("s1", "R1").ok());
  EXPECT_EQ(db_.ActiveSessionCount("R1"), 0);
  EXPECT_TRUE(db_.DropSessionRole("s1", "R1").IsNotFound());
}

TEST_F(RbacDatabaseTest, ActiveCountPerSessionNotPerRoleInstance) {
  ASSERT_TRUE(db_.AddUser("alice").ok());
  ASSERT_TRUE(db_.CreateSession("bob", "s1").ok());
  ASSERT_TRUE(db_.CreateSession("alice", "s2").ok());
  ASSERT_TRUE(db_.AddSessionRole("s1", "R1").ok());
  ASSERT_TRUE(db_.AddSessionRole("s2", "R1").ok());
  EXPECT_EQ(db_.ActiveSessionCount("R1"), 2);
}

TEST_F(RbacDatabaseTest, DeleteUserCascadesToSessionsAndAssignments) {
  ASSERT_TRUE(db_.Assign("bob", "R1").ok());
  ASSERT_TRUE(db_.CreateSession("bob", "s1").ok());
  ASSERT_TRUE(db_.AddSessionRole("s1", "R1").ok());
  ASSERT_TRUE(db_.DeleteUser("bob").ok());
  EXPECT_FALSE(db_.HasSession("s1"));
  EXPECT_EQ(db_.AssignedUsers("R1").size(), 0u);
  EXPECT_EQ(db_.ActiveSessionCount("R1"), 0);
}

TEST_F(RbacDatabaseTest, DeleteRoleCascades) {
  ASSERT_TRUE(db_.Assign("bob", "R1").ok());
  ASSERT_TRUE(db_.CreateSession("bob", "s1").ok());
  ASSERT_TRUE(db_.AddSessionRole("s1", "R1").ok());
  ASSERT_TRUE(db_.Grant(Permission{"read", "x"}, "R1").ok());
  ASSERT_TRUE(db_.DeleteRole("R1").ok());
  EXPECT_FALSE(db_.IsAssigned("bob", "R1"));
  EXPECT_FALSE(db_.IsSessionRoleActive("s1", "R1"));
  EXPECT_EQ(db_.ActiveSessionCount("R1"), 0);
  EXPECT_EQ(db_.RolePermissions("R1").size(), 0u);
  // The session itself survives role deletion.
  EXPECT_TRUE(db_.HasSession("s1"));
}

TEST_F(RbacDatabaseTest, SessionIdsSorted) {
  ASSERT_TRUE(db_.CreateSession("bob", "s2").ok());
  ASSERT_TRUE(db_.CreateSession("bob", "s1").ok());
  const auto ids = db_.SessionIds();
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(ids[0], "s1");
  EXPECT_EQ(ids[1], "s2");
}

}  // namespace
}  // namespace sentinel
