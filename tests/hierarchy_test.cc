#include "rbac/hierarchy.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

class HierarchyTest : public ::testing::Test {
 protected:
  // Figure 1 chains: PM >>= PC >>= Clerk, AM >>= AC >>= Clerk.
  void SetUp() override {
    ASSERT_TRUE(h_.AddInheritance("PM", "PC").ok());
    ASSERT_TRUE(h_.AddInheritance("PC", "Clerk").ok());
    ASSERT_TRUE(h_.AddInheritance("AM", "AC").ok());
    ASSERT_TRUE(h_.AddInheritance("AC", "Clerk").ok());
  }
  RoleHierarchy h_;
};

TEST_F(HierarchyTest, DominatesIsReflexiveAndTransitive) {
  EXPECT_TRUE(h_.Dominates("PM", "PM"));
  EXPECT_TRUE(h_.Dominates("PM", "PC"));
  EXPECT_TRUE(h_.Dominates("PM", "Clerk"));
  EXPECT_FALSE(h_.Dominates("PC", "PM"));
  EXPECT_FALSE(h_.Dominates("PM", "AC"));
}

TEST_F(HierarchyTest, JuniorsAndSeniorsInclusive) {
  EXPECT_EQ(h_.JuniorsOf("PM"),
            (std::set<RoleName>{"PM", "PC", "Clerk"}));
  EXPECT_EQ(h_.SeniorsOf("Clerk"),
            (std::set<RoleName>{"Clerk", "PC", "PM", "AC", "AM"}));
  EXPECT_EQ(h_.JuniorsOf("Clerk"), (std::set<RoleName>{"Clerk"}));
  EXPECT_EQ(h_.SeniorsOf("PM"), (std::set<RoleName>{"PM"}));
}

TEST_F(HierarchyTest, UnknownRoleIsItsOwnClosure) {
  EXPECT_EQ(h_.JuniorsOf("Ghost"), (std::set<RoleName>{"Ghost"}));
  EXPECT_TRUE(h_.Dominates("Ghost", "Ghost"));
  EXPECT_FALSE(h_.Dominates("Ghost", "PM"));
}

TEST_F(HierarchyTest, SelfInheritanceRejected) {
  EXPECT_TRUE(h_.AddInheritance("PM", "PM").IsInvalidArgument());
}

TEST_F(HierarchyTest, DirectCycleRejected) {
  EXPECT_TRUE(h_.AddInheritance("PC", "PM").IsConstraintViolation());
}

TEST_F(HierarchyTest, TransitiveCycleRejected) {
  EXPECT_TRUE(h_.AddInheritance("Clerk", "PM").IsConstraintViolation());
}

TEST_F(HierarchyTest, DuplicateEdgeRejected) {
  EXPECT_TRUE(h_.AddInheritance("PM", "PC").IsAlreadyExists());
}

TEST_F(HierarchyTest, DeleteInheritanceSplitsClosure) {
  ASSERT_TRUE(h_.DeleteInheritance("PC", "Clerk").ok());
  EXPECT_FALSE(h_.Dominates("PM", "Clerk"));
  EXPECT_TRUE(h_.Dominates("AM", "Clerk"));  // Other chain intact.
  EXPECT_TRUE(h_.DeleteInheritance("PC", "Clerk").IsNotFound());
}

TEST_F(HierarchyTest, DiamondShapesSupported) {
  // General hierarchies allow multiple seniors: Clerk under both chains.
  ASSERT_TRUE(h_.AddInheritance("PM", "AC").ok());
  EXPECT_TRUE(h_.Dominates("PM", "AC"));
  EXPECT_EQ(h_.SeniorsOf("AC"), (std::set<RoleName>{"AC", "AM", "PM"}));
}

TEST_F(HierarchyTest, EraseRoleRemovesAllEdges) {
  h_.EraseRole("PC");
  EXPECT_FALSE(h_.Dominates("PM", "Clerk"));
  EXPECT_FALSE(h_.Dominates("PM", "PC"));
  EXPECT_EQ(h_.ImmediateJuniors("PM").size(), 0u);
  EXPECT_EQ(h_.SeniorsOf("Clerk"), (std::set<RoleName>{"Clerk", "AC", "AM"}));
}

TEST_F(HierarchyTest, EdgeCount) {
  EXPECT_EQ(h_.edge_count(), 4);
  ASSERT_TRUE(h_.DeleteInheritance("PM", "PC").ok());
  EXPECT_EQ(h_.edge_count(), 3);
}

TEST_F(HierarchyTest, ImmediateRelations) {
  EXPECT_EQ(h_.ImmediateJuniors("PM"), (std::set<RoleName>{"PC"}));
  EXPECT_EQ(h_.ImmediateSeniors("Clerk"), (std::set<RoleName>{"PC", "AC"}));
}

}  // namespace
}  // namespace sentinel
