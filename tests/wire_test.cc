// Wire schema + framing torture tests. These pin the on-wire contract:
// byte-exact roundtrips, the deadline sentinel, the fatal/request-scoped
// error taxonomy, and a FrameDecoder that survives arbitrary TCP
// segmentation — the stream split at EVERY byte boundary, dribbled one
// byte at a time, truncated, oversized, and versioned from the future.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/wire.h"
#include "net/frame.h"

namespace sentinel {
namespace {

using net::FrameDecoder;
using wire::FrameView;
using wire::MsgType;
using wire::ProtocolError;
using wire::WireError;

AccessRequest SampleRequest() {
  AccessRequest request{"alice", "sess-1", "read", "ledger", "billing"};
  request.deadline = 2'500;
  return request;
}

AccessDecision SampleDecision() {
  AccessDecision decision;
  decision.allowed = false;
  decision.rule = "CA.global";
  decision.reason = "Permission Denied";
  decision.failed_condition = "role.enabled";
  decision.latency = 123;
  decision.shard = 3;
  decision.epoch = 42;
  decision.outcome = AccessOutcome::kDecided;
  return decision;
}

/// Encodes one frame and strips the length prefix, handing back the body
/// the framing layer would pass to DecodeFrame.
std::string_view Body(const std::string& encoded) {
  return std::string_view(encoded).substr(wire::kLengthPrefixBytes);
}

// ------------------------------------------------------------- Roundtrips

TEST(WireCodec, CheckRequestRoundTrip) {
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(7, SampleRequest(), &bytes).ok());

  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  EXPECT_EQ(frame.version, wire::kWireVersion);
  EXPECT_EQ(frame.type, MsgType::kCheckRequest);
  EXPECT_EQ(frame.request_id, 7u);

  wire::CheckRequestMsg msg;
  ASSERT_TRUE(wire::DecodeCheckRequest(frame, &msg, &error));
  EXPECT_EQ(msg.request_id, 7u);
  EXPECT_EQ(msg.request.user, "alice");
  EXPECT_EQ(msg.request.session, "sess-1");
  EXPECT_EQ(msg.request.operation, "read");
  EXPECT_EQ(msg.request.object, "ledger");
  EXPECT_EQ(msg.request.purpose, "billing");
  EXPECT_EQ(msg.request.deadline, 2'500);
}

TEST(WireCodec, CheckRequestEmptyAndBinaryFields) {
  AccessRequest request;
  request.user = std::string("b\0b", 3);  // embedded NUL survives
  request.session = "";
  request.operation = "\xff\xfe caf\xc3\xa9";  // arbitrary bytes, no UTF rule
  request.object = "";
  request.purpose = "";

  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(1, request, &bytes).ok());
  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  wire::CheckRequestMsg msg;
  ASSERT_TRUE(wire::DecodeCheckRequest(frame, &msg, &error));
  EXPECT_EQ(msg.request.user, request.user);
  EXPECT_EQ(msg.request.session, "");
  EXPECT_EQ(msg.request.operation, request.operation);
  EXPECT_EQ(msg.request.object, "");
  EXPECT_EQ(msg.request.purpose, "");
}

TEST(WireCodec, DecisionRoundTripCarriesEveryTypedField) {
  std::string bytes;
  ASSERT_TRUE(wire::EncodeDecision(99, SampleDecision(), &bytes).ok());
  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  EXPECT_EQ(frame.type, MsgType::kDecision);

  wire::DecisionMsg msg;
  ASSERT_TRUE(wire::DecodeDecision(frame, &msg, &error));
  EXPECT_EQ(msg.request_id, 99u);
  EXPECT_FALSE(msg.decision.allowed);
  EXPECT_EQ(msg.decision.rule, "CA.global");
  EXPECT_EQ(msg.decision.reason, "Permission Denied");
  EXPECT_EQ(msg.decision.failed_condition, "role.enabled");
  EXPECT_EQ(msg.decision.latency, 123);
  EXPECT_EQ(msg.decision.shard, 3u);
  EXPECT_EQ(msg.decision.epoch, 42u);
  EXPECT_EQ(msg.decision.outcome, AccessOutcome::kDecided);
}

TEST(WireCodec, DecisionRoundTripEveryOutcome) {
  for (const AccessOutcome outcome :
       {AccessOutcome::kDecided, AccessOutcome::kOverloaded,
        AccessOutcome::kShutdown}) {
    AccessDecision decision;
    decision.outcome = outcome;
    std::string bytes;
    ASSERT_TRUE(wire::EncodeDecision(1, decision, &bytes).ok());
    FrameView frame;
    ProtocolError error;
    ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
    wire::DecisionMsg msg;
    ASSERT_TRUE(wire::DecodeDecision(frame, &msg, &error));
    EXPECT_EQ(msg.decision.outcome, outcome);
  }
}

TEST(WireCodec, UnknownOutcomeIdIsMalformed) {
  std::string bytes;
  ASSERT_TRUE(wire::EncodeDecision(1, AccessDecision{}, &bytes).ok());
  // The outcome byte sits right after the allowed byte in the payload.
  const size_t outcome_at =
      wire::kLengthPrefixBytes + wire::kFrameHeaderBytes + 1;
  bytes[outcome_at] = static_cast<char>(wire::kMaxOutcomeId + 1);
  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  wire::DecisionMsg msg;
  EXPECT_FALSE(wire::DecodeDecision(frame, &msg, &error));
  EXPECT_EQ(error.code, WireError::kMalformedFrame);
  EXPECT_TRUE(error.fatal);
}

TEST(WireCodec, ErrorAndPingPongRoundTrip) {
  std::string bytes;
  wire::EncodeError(5, WireError::kInvalidDeadline, "deadline -7", &bytes);
  wire::EncodePing(6, &bytes);
  wire::EncodePong(7, &bytes);

  FrameDecoder decoder;
  decoder.Feed(bytes);
  FrameView frame;
  ProtocolError error;
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kFrame);
  ASSERT_EQ(frame.type, MsgType::kError);
  wire::ErrorMsg msg;
  ASSERT_TRUE(wire::DecodeError(frame, &msg, &error));
  EXPECT_EQ(msg.request_id, 5u);
  EXPECT_EQ(msg.code, WireError::kInvalidDeadline);
  EXPECT_EQ(msg.message, "deadline -7");

  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPing);
  EXPECT_EQ(frame.request_id, 6u);
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPong);
  EXPECT_EQ(frame.request_id, 7u);
  EXPECT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kNeedMore);
}

// ------------------------------------------------------ Deadline boundary

TEST(WireCodec, DeadlineSentinelRoundTrips) {
  AccessRequest request = SampleRequest();
  request.deadline = AccessRequest::kNoDeadline;
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(1, request, &bytes).ok());
  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  wire::CheckRequestMsg msg;
  ASSERT_TRUE(wire::DecodeCheckRequest(frame, &msg, &error));
  EXPECT_EQ(msg.request.deadline, AccessRequest::kNoDeadline);
}

TEST(WireCodec, NegativeNonSentinelDeadlineIsRequestScopedError) {
  AccessRequest request = SampleRequest();
  request.deadline = -7;  // any negative other than kNoDeadline (-1)
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(1, request, &bytes).ok());
  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  wire::CheckRequestMsg msg;
  EXPECT_FALSE(wire::DecodeCheckRequest(frame, &msg, &error));
  EXPECT_EQ(error.code, WireError::kInvalidDeadline);
  EXPECT_FALSE(error.fatal) << "connection must survive a bad deadline";
}

// -------------------------------------------------- Header edge behavior

TEST(WireCodec, ReservedHeaderBytesAreIgnored) {
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(3, SampleRequest(), &bytes).ok());
  // reserved u16 lives after version + type.
  bytes[wire::kLengthPrefixBytes + 2] = '\xaa';
  bytes[wire::kLengthPrefixBytes + 3] = '\xbb';
  FrameView frame;
  ProtocolError error;
  ASSERT_TRUE(wire::DecodeFrame(Body(bytes), &frame, &error));
  wire::CheckRequestMsg msg;
  EXPECT_TRUE(wire::DecodeCheckRequest(frame, &msg, &error));
  EXPECT_EQ(msg.request.user, "alice");
}

TEST(WireCodec, TruncatedPayloadAtEveryCutIsMalformed) {
  std::string bytes;
  ASSERT_TRUE(wire::EncodeCheckRequest(1, SampleRequest(), &bytes).ok());
  const std::string_view body = Body(bytes);
  // Every strictly-shorter payload must decode to a fatal malformed error,
  // never read out of bounds (ASan watches), never crash.
  for (size_t cut = wire::kFrameHeaderBytes; cut < body.size(); ++cut) {
    FrameView frame;
    ProtocolError error;
    ASSERT_TRUE(wire::DecodeFrame(body.substr(0, cut), &frame, &error))
        << "header itself is intact at cut " << cut;
    wire::CheckRequestMsg msg;
    EXPECT_FALSE(wire::DecodeCheckRequest(frame, &msg, &error))
        << "cut at " << cut;
    EXPECT_EQ(error.code, WireError::kMalformedFrame);
    EXPECT_TRUE(error.fatal);
  }
}

TEST(WireCodec, OverlongFieldRefusedAtEncode) {
  AccessRequest request = SampleRequest();
  request.object.assign(70'000, 'x');  // > u16 length prefix
  std::string bytes;
  const Status status = wire::EncodeCheckRequest(1, request, &bytes);
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(bytes.empty()) << "failed encode must not append bytes";

  AccessDecision decision;
  decision.reason.assign(66'000, 'r');
  const Status dstatus = wire::EncodeDecision(1, decision, &bytes);
  EXPECT_FALSE(dstatus.ok());
  EXPECT_TRUE(bytes.empty());
}

// --------------------------------------------------- FrameDecoder torture

std::string ThreeFrameStream() {
  std::string bytes;
  (void)wire::EncodeCheckRequest(1, SampleRequest(), &bytes);
  (void)wire::EncodeDecision(2, SampleDecision(), &bytes);
  wire::EncodePing(3, &bytes);
  return bytes;
}

/// Polls every available frame, recording (type, request_id) pairs.
std::vector<std::pair<MsgType, uint64_t>> DrainAll(FrameDecoder& decoder) {
  std::vector<std::pair<MsgType, uint64_t>> seen;
  FrameView frame;
  ProtocolError error;
  while (decoder.Poll(&frame, &error) == FrameDecoder::Next::kFrame) {
    seen.emplace_back(frame.type, frame.request_id);
  }
  return seen;
}

TEST(FrameDecoderTorture, SplitAtEveryByteBoundary) {
  const std::string stream = ThreeFrameStream();
  const std::vector<std::pair<MsgType, uint64_t>> expected = {
      {MsgType::kCheckRequest, 1},
      {MsgType::kDecision, 2},
      {MsgType::kPing, 3}};
  // TCP may hand the reactor any prefix/suffix segmentation. Feed
  // [0, split) then [split, end) for every split point and demand the
  // identical frame sequence, with interleaved polls between the feeds.
  for (size_t split = 0; split <= stream.size(); ++split) {
    FrameDecoder decoder;
    decoder.Feed(std::string_view(stream).substr(0, split));
    std::vector<std::pair<MsgType, uint64_t>> seen = DrainAll(decoder);
    decoder.Feed(std::string_view(stream).substr(split));
    for (const auto& frame : DrainAll(decoder)) seen.push_back(frame);
    EXPECT_EQ(seen, expected) << "split at byte " << split;
    EXPECT_EQ(decoder.pending_bytes(), 0u) << "split at byte " << split;
  }
}

TEST(FrameDecoderTorture, ByteByByteDribble) {
  const std::string stream = ThreeFrameStream();
  FrameDecoder decoder;
  std::vector<std::pair<MsgType, uint64_t>> seen;
  FrameView frame;
  ProtocolError error;
  for (const char byte : stream) {
    decoder.Feed(&byte, 1);
    while (decoder.Poll(&frame, &error) == FrameDecoder::Next::kFrame) {
      seen.emplace_back(frame.type, frame.request_id);
    }
  }
  const std::vector<std::pair<MsgType, uint64_t>> expected = {
      {MsgType::kCheckRequest, 1},
      {MsgType::kDecision, 2},
      {MsgType::kPing, 3}};
  EXPECT_EQ(seen, expected);
  EXPECT_EQ(decoder.pending_bytes(), 0u);
}

TEST(FrameDecoderTorture, OversizedLengthPrefixPoisonsForever) {
  std::string bytes;
  wire::PutU32(wire::kMaxFrameBytes + 1, &bytes);
  bytes += "whatever follows is unreachable";
  FrameDecoder decoder;
  decoder.Feed(bytes);
  FrameView frame;
  ProtocolError error;
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kError);
  EXPECT_EQ(error.code, WireError::kFrameTooLarge);
  EXPECT_TRUE(error.fatal);
  EXPECT_TRUE(decoder.poisoned());
  // No resync: later feeds are ignored, later polls repeat the poison.
  std::string good;
  wire::EncodePing(1, &good);
  decoder.Feed(good);
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kError);
  EXPECT_EQ(error.code, WireError::kFrameTooLarge);
}

TEST(FrameDecoderTorture, UnknownVersionIsFatal) {
  std::string bytes;
  wire::EncodePing(9, &bytes);
  bytes[wire::kLengthPrefixBytes] = char(wire::kWireVersion + 1);
  FrameDecoder decoder;
  decoder.Feed(bytes);
  FrameView frame;
  ProtocolError error;
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kError);
  EXPECT_EQ(error.code, WireError::kUnsupportedVersion);
  EXPECT_TRUE(error.fatal);
  EXPECT_TRUE(decoder.poisoned());
}

TEST(FrameDecoderTorture, UnknownMessageTypeSurvivesFraming) {
  std::string bytes;
  wire::EncodePing(4, &bytes);
  bytes[wire::kLengthPrefixBytes + 1] = '\x7f';  // type id from the future
  wire::EncodePing(5, &bytes);                   // stream continues after it
  FrameDecoder decoder;
  decoder.Feed(bytes);
  FrameView frame;
  ProtocolError error;
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.raw_type, 0x7f);
  EXPECT_EQ(frame.request_id, 4u);
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.type, MsgType::kPing);
  EXPECT_EQ(frame.request_id, 5u);
}

TEST(FrameDecoderTorture, TruncatedTrailingFrameIsPendingAtEof) {
  std::string bytes;
  (void)wire::EncodeCheckRequest(1, SampleRequest(), &bytes);
  std::string tail;
  (void)wire::EncodeCheckRequest(2, SampleRequest(), &tail);
  bytes += tail.substr(0, tail.size() / 2);  // peer dies mid-frame

  FrameDecoder decoder;
  decoder.Feed(bytes);
  FrameView frame;
  ProtocolError error;
  ASSERT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kFrame);
  EXPECT_EQ(frame.request_id, 1u);
  EXPECT_EQ(decoder.Poll(&frame, &error), FrameDecoder::Next::kNeedMore);
  EXPECT_GT(decoder.pending_bytes(), 0u)
      << "connection owner uses this to flag a truncated stream at EOF";
}

}  // namespace
}  // namespace sentinel
