// Admission policer: GCRA refill arithmetic at clock edges (zero-elapsed,
// long-idle, near-INT64_MAX), per-principal isolation across shards,
// weighted-shed ordering under a full mailbox, quota updates delivered by
// threshold rules through the pauseless swap path, and a multi-producer
// stress kept small enough for the TSan stage.

#include "service/policer.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/sentinelpp.h"
#include "core/policy_parser.h"
#include "service/authorization_service.h"
#include "service/mailbox.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

constexpr int64_t kSecond = 1'000'000'000;

/// A policer driven by a hand-cranked logical clock.
struct LogicalPolicer {
  explicit LogicalPolicer(Policer::Quota default_quota,
                          size_t capacity = 64) {
    Policer::Options options;
    options.capacity = capacity;
    options.default_quota = default_quota;
    options.clock = [this] { return now.load(); };
    policer = std::make_unique<Policer>(std::move(options));
  }
  std::atomic<int64_t> now{0};
  std::unique_ptr<Policer> policer;
};

// --------------------------------------------------------------- GCRA unit

TEST(PolicerTest, InactiveWithoutAnyQuota) {
  Policer policer(Policer::Options{});
  EXPECT_FALSE(policer.active());
  EXPECT_EQ(policer.Admit("anyone"), Policer::Verdict::kUnpoliced);
  EXPECT_EQ(policer.admitted(), 0u);
}

TEST(PolicerTest, ZeroElapsedClockDrainsExactlyBurst) {
  LogicalPolicer fixture(Policer::Quota{1.0, 3});
  Policer& policer = *fixture.policer;
  EXPECT_EQ(policer.TokensAvailable("alice"), 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming) << i;
  }
  // The clock has not moved: no refill, the bucket is exactly empty.
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kOverQuota);
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kOverQuota);
  EXPECT_EQ(policer.TokensAvailable("alice"), 0);
  EXPECT_EQ(policer.admitted(), 3u);
  EXPECT_EQ(policer.over_quota_verdicts(), 2u);
}

TEST(PolicerTest, RefillAtExactIntervalBoundary) {
  LogicalPolicer fixture(Policer::Quota{1.0, 1});
  Policer& policer = *fixture.policer;
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
  // One token per second; one nanosecond short of the interval is still
  // over quota, the exact boundary conforms.
  fixture.now = kSecond - 1;
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kOverQuota);
  fixture.now = kSecond;
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
}

TEST(PolicerTest, LongIdleClampsRefillAtBurst) {
  LogicalPolicer fixture(Policer::Quota{1.0, 4});
  Policer& policer = *fixture.policer;
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
  }
  // A week idle refills to the bucket depth, not a week of tokens.
  fixture.now = int64_t{7} * 24 * 3600 * kSecond;
  EXPECT_EQ(policer.TokensAvailable("alice"), 4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
  }
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kOverQuota);
  // Refill accounting saw one bucket's worth, clamped.
  EXPECT_LE(policer.refilled_tokens(), 5u);
  EXPECT_GE(policer.refilled_tokens(), 4u);
}

TEST(PolicerTest, NearInt64MaxClockHasNoOverflow) {
  LogicalPolicer fixture(Policer::Quota{1.0, 1});
  Policer& policer = *fixture.policer;
  // A hostile clock parked a few ns shy of INT64_MAX: the TAT advance must
  // saturate instead of wrapping (UBSan pins this). A wrapped TAT would go
  // negative and wrongly conform — over-quota here proves saturation.
  fixture.now = std::numeric_limits<int64_t>::max() - 5;
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kOverQuota);
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kOverQuota);
  EXPECT_GE(policer.TokensAvailable("alice"), 0);
}

TEST(PolicerTest, HugeBurstSaturatesTauWithoutOverflow) {
  LogicalPolicer fixture(
      Policer::Quota{1e-6, std::numeric_limits<int64_t>::max()});
  Policer& policer = *fixture.policer;
  // interval ~1e15 ns times a maximal burst: tau saturates, conformance
  // must still hold (a saturated tau polices nothing, it never wraps).
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
  EXPECT_EQ(policer.Admit("alice"), Policer::Verdict::kConforming);
}

TEST(PolicerTest, OverrideAndResetSemantics) {
  LogicalPolicer fixture(Policer::Quota{1.0, 1});
  Policer& policer = *fixture.policer;
  // Explicitly unpoliced override wins over the default quota.
  policer.SetQuota("vip", Policer::Quota{0, 1});
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(policer.Admit("vip"), Policer::Verdict::kUnpoliced);
  }
  // A tighter override applies immediately; Reset reverts to the default.
  policer.SetQuota("mallory", Policer::Quota{1.0, 2});
  EXPECT_EQ(policer.Admit("mallory"), Policer::Verdict::kConforming);
  EXPECT_EQ(policer.Admit("mallory"), Policer::Verdict::kConforming);
  EXPECT_EQ(policer.Admit("mallory"), Policer::Verdict::kOverQuota);
  policer.ResetQuota("vip");
  EXPECT_EQ(policer.Admit("vip"), Policer::Verdict::kConforming);
  EXPECT_EQ(policer.Admit("vip"), Policer::Verdict::kOverQuota);
}

TEST(PolicerTest, TableOverflowFailsOpen) {
  Policer::Options options;
  options.capacity = 4;
  options.default_quota = Policer::Quota{1.0, 1};
  options.clock = [] { return int64_t{0}; };
  Policer policer(std::move(options));
  // More principals than slots: the extras are unpoliced, and counted.
  for (int i = 0; i < 64; ++i) {
    (void)policer.Admit("user-" + std::to_string(i));
  }
  EXPECT_GT(policer.overflows(), 0u);
  EXPECT_GT(policer.admitted(), 0u);
}

TEST(PolicerTest, OccupancyScanReportsStates) {
  LogicalPolicer fixture(Policer::Quota{1.0, 1});
  Policer& policer = *fixture.policer;
  EXPECT_EQ(policer.Admit("a"), Policer::Verdict::kConforming);
  EXPECT_EQ(policer.Admit("a"), Policer::Verdict::kOverQuota);
  policer.SetQuota("b", Policer::Quota{5.0, 2});
  const Policer::Occupancy occupancy = policer.Occupy();
  EXPECT_EQ(occupancy.tracked, 2u);
  EXPECT_EQ(occupancy.over_quota, 1u);
  EXPECT_EQ(occupancy.throttled, 1u);
}

// ------------------------------------------- Weighted mailbox reservation

TEST(PolicerTest, ReducedDepthReservesHeadroomForConformantPushes) {
  Mailbox<int> mailbox;
  mailbox.set_capacity(8);
  using Push = Mailbox<int>::PushResult;
  // Over-quota producers admit only up to the reduced bound (6 of 8)...
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(mailbox.PushBounded(i, /*block=*/false, 0, nullptr, 6),
              Push::kOk);
  }
  EXPECT_EQ(mailbox.PushBounded(99, /*block=*/false, 0, nullptr, 6),
            Push::kFull);
  // ...while conformant producers still find the reserved top quarter.
  EXPECT_EQ(mailbox.PushBounded(6, /*block=*/false, 0, nullptr), Push::kOk);
  EXPECT_EQ(mailbox.PushBounded(7, /*block=*/false, 0, nullptr), Push::kOk);
  EXPECT_EQ(mailbox.PushBounded(99, /*block=*/false, 0, nullptr),
            Push::kFull);
  EXPECT_EQ(mailbox.depth(), 8u);
  EXPECT_EQ(mailbox.peak_depth(), 8u);
}

// ------------------------------------------------------ Service admission

ServiceConfig PolicedConfig(int shards, std::atomic<int64_t>* clock) {
  ServiceConfig config;
  config.num_shards = shards;
  config.start_time = testutil::Noon();
  config.quota_rate_per_s = 1.0;
  config.quota_burst = 2;
  config.quota_enforcement = QuotaEnforcement::kAlways;
  config.quota_clock = [clock] { return clock->load(); };
  return config;
}

TEST(PolicerServiceTest, PerPrincipalIsolationAcrossShards) {
  std::atomic<int64_t> clock{0};
  AuthorizationService service(PolicedConfig(4, &clock));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "sa").ok());
  ASSERT_TRUE(service.CreateSession("bob", "sb").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "sa", "PM").ok());
  ASSERT_TRUE(service.AddActiveRole("bob", "sb", "AC").ok());

  const AccessRequest alice{"alice", "sa", "read", "ledger", ""};
  const AccessRequest bob{"bob", "sb", "read", "ledger", ""};
  // Alice exhausts her own bucket (burst 2, frozen clock)...
  EXPECT_EQ(service.CheckAccess(alice).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(alice).outcome, AccessOutcome::kDecided);
  const AccessDecision refused = service.CheckAccess(alice);
  EXPECT_EQ(refused.outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(refused.reason, "overloaded: over quota");
  // ...without spending a single token of bob's, wherever he shards.
  EXPECT_EQ(service.CheckAccess(bob).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(bob).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(bob).outcome, AccessOutcome::kOverloaded);

  // Refill restores both, independently.
  clock += 10 * kSecond;
  EXPECT_EQ(service.CheckAccess(alice).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(bob).outcome, AccessOutcome::kDecided);

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.policer_refused, 2u);
  EXPECT_EQ(stats.policer_over_quota, 2u);
  EXPECT_GE(stats.policer_admitted, 6u);
  service.Shutdown();
}

TEST(PolicerServiceTest, BatchPathRefusesPerItem) {
  std::atomic<int64_t> clock{0};
  AuthorizationService service(PolicedConfig(2, &clock));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "sa").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "sa", "PM").ok());
  ASSERT_TRUE(service.CreateSession("carol", "sc").ok());
  ASSERT_TRUE(service.AddActiveRole("carol", "sc", "Clerk").ok());

  // Four alice items against a burst of 2, interleaved with carol's: the
  // overflow is refused item by item, batch-mates unharmed.
  std::vector<AccessRequest> requests = {
      {"alice", "sa", "read", "ledger", ""},
      {"carol", "sc", "read", "ledger", ""},
      {"alice", "sa", "read", "ledger", ""},
      {"alice", "sa", "read", "ledger", ""},
      {"carol", "sc", "read", "ledger", ""},
      {"alice", "sa", "read", "ledger", ""},
  };
  const std::vector<AccessDecision> results =
      service.CheckAccessBatch(requests);
  EXPECT_EQ(results[0].outcome, AccessOutcome::kDecided);
  EXPECT_EQ(results[1].outcome, AccessOutcome::kDecided);
  EXPECT_EQ(results[2].outcome, AccessOutcome::kDecided);
  EXPECT_EQ(results[3].outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(results[3].reason, "overloaded: over quota");
  EXPECT_EQ(results[4].outcome, AccessOutcome::kDecided);
  EXPECT_EQ(results[5].outcome, AccessOutcome::kOverloaded);
  service.Shutdown();
}

TEST(PolicerServiceTest, SessionKeyedWhenUserAbsentAndTenantAggregation) {
  std::atomic<int64_t> clock{0};
  ServiceConfig config = PolicedConfig(1, &clock);
  config.quota_key_delimiter = '/';
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "tenant-a/s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "tenant-a/s1", "PM").ok());

  // No user on the request: the session id is the principal, truncated at
  // the delimiter — both sessions share the "tenant-a" bucket.
  const AccessRequest first{"", "tenant-a/s1", "read", "ledger", ""};
  const AccessRequest second{"", "tenant-a/s2", "read", "ledger", ""};
  EXPECT_EQ(service.CheckAccess(first).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(second).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(first).outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(service.policer().TokensAvailable("tenant-a"), 0);
  service.Shutdown();
}

TEST(PolicerServiceTest, ConfigRejectsInertAndMalformedQuotas) {
  ServiceConfig inert;
  inert.quota_rate_per_s = 5;  // kOnOverload + unbounded mailbox: inert.
  EXPECT_FALSE(AuthorizationService::ValidateConfig(inert).ok());
  inert.mailbox_capacity = 64;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(inert).ok());

  ServiceConfig negative;
  negative.quota_rate_per_s = -1;
  EXPECT_FALSE(AuthorizationService::ValidateConfig(negative).ok());

  ServiceConfig capacity;
  capacity.policer_capacity = 100;  // Not a power of two.
  EXPECT_FALSE(AuthorizationService::ValidateConfig(capacity).ok());

  ServiceConfig anonymous;
  anonymous.quota_overrides.push_back(PrincipalQuota{"", 1.0, 1});
  EXPECT_FALSE(AuthorizationService::ValidateConfig(anonymous).ok());
}

// Weighted shedding under a genuinely full mailbox: over-quota principals
// are refused at the reduced bound while a conformant principal still gets
// the reserved headroom.
TEST(PolicerServiceTest, WeightedShedOrderingUnderFullMailbox) {
  std::atomic<int64_t> clock{0};
  ServiceConfig config;
  config.num_shards = 1;
  config.start_time = testutil::Noon();
  config.mailbox_capacity = 8;
  config.overload_policy = OverloadPolicy::kShed;
  config.quota_enforcement = QuotaEnforcement::kOnOverload;
  config.quota_overrides.push_back(PrincipalQuota{"alice", 1e-9, 1});
  config.quota_clock = [&clock] { return clock.load(); };
  AuthorizationService service(config);
  ASSERT_TRUE(service.init_status().ok());
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("carol", "sc").ok());
  ASSERT_TRUE(service.AddActiveRole("carol", "sc", "Clerk").ok());
  ASSERT_TRUE(service.CreateSession("alice", "sa").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "sa", "PM").ok());

  // Spend alice's only token while the shard is still live, so every
  // producer below is deterministically over quota.
  const AccessRequest abusive{"alice", "sa", "read", "ledger", ""};
  EXPECT_EQ(service.CheckAccess(abusive).outcome, AccessOutcome::kDecided);

  // Stall the shard so admitted envelopes pile up behind it; wait until
  // the fault is actually running so no producer envelope is popped into
  // the shard's local batch alongside it.
  std::atomic<bool> stalled{false};
  std::atomic<bool> release{false};
  ASSERT_TRUE(service.InjectShardFault(0, [&stalled, &release] {
    stalled = true;
    while (!release.load()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }));
  while (!stalled.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Seven over-quota requests may only fill the non-reserved depth
  // (6 of 8): exactly six queue, the seventh is refused immediately.
  std::vector<std::thread> producers;
  std::vector<AccessDecision> abusive_results(7);
  for (int i = 0; i < 7; ++i) {
    producers.emplace_back([&service, &abusive, &abusive_results, i] {
      abusive_results[i] = service.CheckAccess(abusive);
    });
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (service.MailboxDepth(0) < 6 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(service.MailboxDepth(0), 6u);

  // At the reduced bound, another over-quota request is refused
  // immediately...
  const AccessDecision refused = service.CheckAccess(abusive);
  EXPECT_EQ(refused.outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(refused.reason, "overloaded: over quota");
  // ...while the conformant principal is still admitted into the reserve.
  const AccessRequest good{"carol", "sc", "read", "ledger", ""};
  std::thread conformant_caller([&service, &good] {
    const AccessDecision decision = service.CheckAccess(good);
    EXPECT_EQ(decision.outcome, AccessOutcome::kDecided);
    EXPECT_TRUE(decision.allowed);
  });

  release = true;
  for (std::thread& t : producers) t.join();
  conformant_caller.join();

  // Of the 7 concurrent abusive calls, 6 were admitted (the reduced
  // bound) and at least one was refused over quota; adding the inline
  // refusal above, refusals land only on alice.
  int refusals = 0;
  for (const AccessDecision& decision : abusive_results) {
    if (decision.outcome == AccessOutcome::kOverloaded) {
      EXPECT_EQ(decision.reason, "overloaded: over quota");
      ++refusals;
    }
  }
  EXPECT_EQ(refusals, 1);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.policer_refused, 2u);
  service.Shutdown();
}

// ----------------------------------------- Threshold-rule driven throttle

const char* kThrottlePolicy = R"(
policy "throttle"

role Clerk { permission: read(ledger) }
user mallory { assign: Clerk }
user eve { assign: Clerk }

threshold guard { count: 3  window: 1m  throttle-rate: 0.000001
                  throttle-burst: 1 }
)";

// Same policy with a softer penalty bucket: the swap test's target.
const char* kThrottlePolicySoft = R"(
policy "throttle"

role Clerk { permission: read(ledger) }
user mallory { assign: Clerk }
user eve { assign: Clerk }

threshold guard { count: 3  window: 1m  throttle-rate: 0.000001
                  throttle-burst: 3 }
)";

TEST(PolicerServiceTest, ThresholdRuleThrottlesAbusivePrincipal) {
  std::atomic<int64_t> clock{0};
  ServiceConfig config;
  config.synchronous = true;
  config.start_time = testutil::Noon();
  config.quota_enforcement = QuotaEnforcement::kAlways;
  config.quota_clock = [&clock] { return clock.load(); };
  AuthorizationService service(config);
  auto policy = PolicyParser::Parse(kThrottlePolicy);
  ASSERT_TRUE(policy.ok()) << policy.status().message();
  ASSERT_TRUE(service.LoadPolicy(*policy).ok());
  ASSERT_TRUE(service.CreateSession("mallory", "sm").ok());
  ASSERT_TRUE(service.AddActiveRole("mallory", "sm", "Clerk").ok());

  // Three denials within the window trip the per-user throttle reaction.
  const AccessRequest bad{"mallory", "sm", "erase", "ledger", ""};
  for (int i = 0; i < 3; ++i) {
    const AccessDecision denied = service.CheckAccess(bad);
    EXPECT_EQ(denied.outcome, AccessOutcome::kDecided);
    EXPECT_FALSE(denied.allowed);
  }
  // The penalty quota (burst 1) allows one more dispatch, then the
  // admission edge refuses — even a legitimate request.
  const AccessRequest good{"mallory", "sm", "read", "ledger", ""};
  EXPECT_EQ(service.CheckAccess(good).outcome, AccessOutcome::kDecided);
  const AccessDecision refused = service.CheckAccess(good);
  EXPECT_EQ(refused.outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(refused.reason, "overloaded: over quota");
  service.Shutdown();
}

TEST(PolicerServiceTest, PauselessSwapUpdatesThrottlePenalty) {
  std::atomic<int64_t> clock{0};
  ServiceConfig config;
  config.synchronous = true;
  config.start_time = testutil::Noon();
  config.quota_enforcement = QuotaEnforcement::kAlways;
  config.quota_clock = [&clock] { return clock.load(); };
  AuthorizationService service(config);
  auto policy = PolicyParser::Parse(kThrottlePolicy);
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(service.LoadPolicy(*policy).ok());
  ASSERT_TRUE(service.CreateSession("eve", "se").ok());
  ASSERT_TRUE(service.AddActiveRole("eve", "se", "Clerk").ok());

  // Swap in a softer penalty (burst 3) via the pauseless path before any
  // breach: the regenerated SEC rule must carry the new directive.
  auto softer = PolicyParser::Parse(kThrottlePolicySoft);
  ASSERT_TRUE(softer.ok());
  auto report = service.ApplyPolicyUpdate(*softer);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  const AccessRequest bad{"eve", "se", "erase", "ledger", ""};
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(service.CheckAccess(bad).allowed);
  }
  // The updated penalty allows a burst of 3 before refusing.
  const AccessRequest good{"eve", "se", "read", "ledger", ""};
  EXPECT_EQ(service.CheckAccess(good).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(good).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(good).outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service.CheckAccess(good).outcome, AccessOutcome::kOverloaded);
  service.Shutdown();
}

// ------------------------------------------------------------ TSan stress

TEST(PolicerStressTest, MultiProducerAdmissionWithConcurrentQuotaUpdates) {
  std::atomic<int64_t> clock{0};
  Policer::Options options;
  options.capacity = 64;
  options.default_quota = Policer::Quota{1000.0, 8};
  options.clock = [&clock] { return clock.load(); };
  Policer policer(std::move(options));

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 2000;
  std::atomic<uint64_t> observed_admits{0};
  std::atomic<uint64_t> observed_over{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&policer, &clock, &observed_admits,
                          &observed_over, t] {
      const std::string principals[] = {"alice", "bob", "mallory",
                                        "worker-" + std::to_string(t)};
      for (int i = 0; i < kOpsPerThread; ++i) {
        const Policer::Verdict verdict =
            policer.Admit(principals[i % 4]);
        if (verdict == Policer::Verdict::kConforming) {
          observed_admits.fetch_add(1);
        } else if (verdict == Policer::Verdict::kOverQuota) {
          observed_over.fetch_add(1);
        }
        if (i % 128 == 0) clock.fetch_add(1'000'000);  // 1ms.
        if (i % 512 == 0) {
          policer.SetQuota("mallory", Policer::Quota{0.5, 1 + i % 3});
        }
        if (i % 1024 == 0) (void)policer.Occupy();
      }
    });
  }
  for (std::thread& t : workers) t.join();
  // Every verdict was either an admit or an over-quota refusal, and the
  // policer's own counters agree with what the callers observed.
  EXPECT_EQ(policer.admitted(), observed_admits.load());
  EXPECT_EQ(policer.over_quota_verdicts(), observed_over.load());
  EXPECT_EQ(observed_admits.load() + observed_over.load(),
            static_cast<uint64_t>(kThreads) * kOpsPerThread);
  EXPECT_EQ(policer.overflows(), 0u);
}

}  // namespace
}  // namespace sentinel
