// AuthorizationService: routing determinism, admin broadcast visibility,
// shutdown drain, batch parity, and a multi-threaded stress test asserting
// per-user decision sequences match the single-shard engine on the same
// request trace.

#include "service/authorization_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/sentinelpp.h"
#include "core/decision_log.h"
#include "service/mailbox.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"

namespace sentinel {
namespace {

ServiceConfig ShardedConfig(int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.start_time = testutil::Noon();
  return config;
}

ServiceConfig SyncConfig() {
  ServiceConfig config;
  config.synchronous = true;
  config.start_time = testutil::Noon();
  return config;
}

// ------------------------------------------------------------ Facade basics

TEST(ServiceTest, SynchronousModeMatchesEngineSemantics) {
  AuthorizationService service(SyncConfig());
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  EXPECT_EQ(service.num_shards(), 1);
  EXPECT_TRUE(service.synchronous());

  EXPECT_TRUE(service.CreateSession("alice", "s1").allowed);
  EXPECT_TRUE(service.AddActiveRole("alice", "s1", "PM").allowed);

  AccessRequest ok_request{"alice", "s1", "read", "ledger", ""};
  AccessDecision allowed = service.CheckAccess(ok_request);
  EXPECT_TRUE(allowed.allowed);
  EXPECT_FALSE(allowed.rule.empty());
  EXPECT_EQ(allowed.shard, 0u);

  AccessRequest bad_request{"alice", "s1", "erase", "ledger", ""};
  AccessDecision denied = service.CheckAccess(bad_request);
  EXPECT_FALSE(denied.allowed);
  EXPECT_EQ(denied.reason, "Permission Denied");

  // Legacy session-keyed check (no user): resolved via the registry.
  AccessRequest by_session{"", "s1", "read", "ledger", ""};
  EXPECT_TRUE(service.CheckAccess(by_session).allowed);
}

TEST(ServiceTest, UnknownSessionDeniedOnEveryTopology) {
  for (int shards : {1, 4}) {
    AuthorizationService service(ShardedConfig(shards));
    ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
    AccessRequest request{"", "ghost-session", "read", "ledger", ""};
    AccessDecision decision = service.CheckAccess(request);
    EXPECT_FALSE(decision.allowed);
    EXPECT_EQ(decision.reason, "Permission Denied");
  }
}

// -------------------------------------------------------------- Routing

TEST(ServiceTest, RoutingIsDeterministicAcrossInstances) {
  AuthorizationService a(ShardedConfig(4));
  AuthorizationService b(ShardedConfig(4));
  for (int i = 0; i < 64; ++i) {
    const std::string user = SyntheticUserName(i);
    EXPECT_EQ(a.ShardOf(user), b.ShardOf(user)) << user;
    EXPECT_LT(a.ShardOf(user), 4u);
  }
}

TEST(ServiceTest, SessionsLiveOnTheUsersHomeShard) {
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s-alice").allowed);
  ASSERT_TRUE(service.CreateSession("bob", "s-bob").allowed);

  const uint32_t alice_home = service.ShardOf("alice");
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      const bool has =
                          engine.rbac().db().GetSession("s-alice").ok();
                      EXPECT_EQ(has,
                                static_cast<uint32_t>(shard) == alice_home);
                    });
  }
  // The decision reports the shard that made it.
  (void)service.AddActiveRole("alice", "s-alice", "PM");
  AccessRequest request{"alice", "s-alice", "read", "ledger", ""};
  EXPECT_EQ(service.CheckAccess(request).shard, alice_home);
}

// ------------------------------------------------- Admin broadcast + epoch

TEST(ServiceTest, AdminBroadcastVisibleOnAllShardsAfterBarrier) {
  AuthorizationService service(ShardedConfig(4));
  Policy policy = testutil::EnterpriseXyzPolicy();
  ASSERT_TRUE(service.LoadPolicy(policy).ok());
  const uint64_t epoch_after_load = service.admin_epoch();
  EXPECT_GE(epoch_after_load, 1u);

  ASSERT_TRUE(service.CreateSession("carol", "s-carol").allowed);
  // carol is only a Clerk: activating PC is denied pre-update.
  EXPECT_FALSE(service.AddActiveRole("carol", "s-carol", "PC").allowed);

  Policy updated = policy;
  auto carol = updated.MutableUser("carol");
  ASSERT_TRUE(carol.ok());
  (*carol)->assignments.insert("PC");
  auto report = service.ApplyPolicyUpdate(updated);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_GT(service.admin_epoch(), epoch_after_load);

  // Post-barrier, the new assignment is visible wherever it is queried.
  EXPECT_TRUE(service.AddActiveRole("carol", "s-carol", "PC").allowed);
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_TRUE(
                          engine.rbac().db().IsAssigned("carol", "PC"));
                    });
  }
  // Decisions taken after the broadcast carry its epoch (or later).
  AccessRequest request{"carol", "s-carol", "read", "ledger", ""};
  EXPECT_GE(service.CheckAccess(request).epoch, service.admin_epoch());
}

TEST(ServiceTest, RoleDisableBroadcastDeactivatesEverywhere) {
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "sa").allowed);
  ASSERT_TRUE(service.CreateSession("carol", "sc").allowed);
  ASSERT_TRUE(service.AddActiveRole("alice", "sa", "PM").allowed);
  ASSERT_TRUE(service.AddActiveRole("carol", "sc", "Clerk").allowed);

  EXPECT_TRUE(service.DisableRole("Clerk").allowed);
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_FALSE(engine.role_state().IsEnabled("Clerk"));
                    });
  }
  // carol's active Clerk instance was force-deactivated on her home shard.
  EXPECT_FALSE(
      service.CheckAccess({"carol", "sc", "read", "ledger", ""}).allowed);
}

TEST(ServiceTest, TimeAdvanceFansOutToEveryShard) {
  AuthorizationService service(ShardedConfig(3));
  ASSERT_TRUE(service.LoadPolicy(testutil::HospitalPolicy()).ok());
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_TRUE(engine.role_state().IsEnabled("DayDoctor"));
                    });
  }
  // Advance past the 16:00 shift end; the generated temporal rules must
  // fire on every shard.
  service.AdvanceTo(MakeTime(2026, 7, 6, 16, 30, 0));
  EXPECT_EQ(service.Now(), MakeTime(2026, 7, 6, 16, 30, 0));
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_FALSE(
                          engine.role_state().IsEnabled("DayDoctor"));
                      EXPECT_EQ(engine.Now(),
                                MakeTime(2026, 7, 6, 16, 30, 0));
                    });
  }
}

// ------------------------------------------------------------------ Batch

TEST(ServiceTest, BatchMatchesSingleCallDecisions) {
  AuthorizationService sharded(ShardedConfig(4));
  AuthorizationService sync(SyncConfig());
  for (AuthorizationService* service : {&sharded, &sync}) {
    ASSERT_TRUE(service->LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
    ASSERT_TRUE(service->CreateSession("alice", "s1").allowed);
    ASSERT_TRUE(service->AddActiveRole("alice", "s1", "PM").allowed);
    ASSERT_TRUE(service->CreateSession("bob", "s2").allowed);
    ASSERT_TRUE(service->AddActiveRole("bob", "s2", "AC").allowed);
  }
  std::vector<AccessRequest> requests = {
      {"alice", "s1", "read", "ledger", ""},
      {"bob", "s2", "write", "approval", ""},
      {"alice", "s1", "write", "approval", ""},  // Not alice's permission.
      {"bob", "s2", "approve", "budget-request", ""},
      {"alice", "s1", "approve", "budget-request", ""},
  };
  const std::vector<AccessDecision> concurrent =
      sharded.CheckAccessBatch(requests);
  const std::vector<AccessDecision> reference =
      sync.CheckAccessBatch(requests);
  ASSERT_EQ(concurrent.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(concurrent[i].allowed, reference[i].allowed) << i;
    EXPECT_EQ(concurrent[i].rule, reference[i].rule) << i;
    EXPECT_EQ(concurrent[i].reason, reference[i].reason) << i;
  }
}

// --------------------------------------------------------------- Shutdown

// The drain-not-drop contract, pinned deterministically at the mailbox
// level: items queued before Close() are still handed to the consumer;
// pushes after Close() are refused.
TEST(MailboxTest, CloseDrainsBacklogBeforeRefusing) {
  Mailbox<int> mailbox;
  EXPECT_TRUE(mailbox.Push(1));
  EXPECT_TRUE(mailbox.Push(2));
  EXPECT_TRUE(mailbox.Push(3));
  mailbox.Close();
  EXPECT_FALSE(mailbox.Push(4));

  std::deque<int> backlog;
  ASSERT_TRUE(mailbox.PopAll(&backlog));
  ASSERT_EQ(backlog.size(), 3u);
  EXPECT_EQ(backlog[0], 1);
  EXPECT_EQ(backlog[2], 3);
  // Closed and drained: the consumer's exit signal, without blocking.
  EXPECT_FALSE(mailbox.PopAll(&backlog));
}

TEST(ServiceTest, ShutdownDrainsQueuedWorkAndRefusesNewWork) {
  AuthorizationService service(ShardedConfig(2));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").allowed);

  std::vector<AccessRequest> requests(
      5000, AccessRequest{"alice", "s1", "read", "ledger", ""});
  std::vector<AccessDecision> decisions;
  std::thread submitter(
      [&] { decisions = service.CheckAccessBatch(requests); });
  // Let the batch hit the mailboxes, then shut down: queued envelopes must
  // still be decided for real — mailboxes drain, they don't drop.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  service.Shutdown();
  submitter.join();

  // If the submitter enqueued before Shutdown closed the mailboxes, every
  // decision is a real engine verdict; if Shutdown won the race (slow
  // schedulers, sanitizer builds) the batch is refused explicitly. Either
  // way the call completes — no hang, no torn batch, no silent drop.
  ASSERT_EQ(decisions.size(), requests.size());
  for (const AccessDecision& decision : decisions) {
    if (decision.allowed) {
      EXPECT_NE(decision.rule, "");
    } else {
      EXPECT_EQ(decision.reason, "service is shut down");
    }
  }
  // The whole batch targets one user, so one shard: the envelope is pushed
  // atomically and decided as a unit — mixed verdicts would mean a torn
  // batch.
  EXPECT_TRUE(std::all_of(decisions.begin(), decisions.end(),
                          [](const AccessDecision& d) { return d.allowed; }) ||
              std::none_of(decisions.begin(), decisions.end(),
                           [](const AccessDecision& d) { return d.allowed; }));

  // Post-shutdown submissions get the shutdown decision, not a hang.
  AccessDecision after =
      service.CheckAccess({"alice", "s1", "read", "ledger", ""});
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, "service is shut down");
  EXPECT_FALSE(service.CreateSession("bob", "s2").allowed);
  service.Shutdown();  // Idempotent.
}

// ---------------------------------------------------- Decision audit ring

TEST(ServiceTest, DecisionLogRingBufferCapsAndCountsOverflow) {
  DecisionLog log(4);
  for (int i = 0; i < 10; ++i) {
    Decision decision;
    decision.Allow("rule" + std::to_string(i));
    log.Push(DecisionRecord{i, "op", decision});
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.overflow(), 6u);
  EXPECT_EQ(log[0].when, 6);  // Oldest retained.
  EXPECT_EQ(log.back().when, 9);
  // Reverse iteration (report rendering) sees newest first.
  auto it = log.rbegin();
  EXPECT_EQ(it->when, 9);
  // Shrinking drops the oldest surplus and counts it.
  log.set_capacity(2);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.overflow(), 8u);
  EXPECT_EQ(log[0].when, 8);
  // Capacity 0 disables recording; pushes count as overflow.
  log.set_capacity(0);
  Decision d;
  d.Allow("x");
  log.Push(DecisionRecord{99, "op", d});
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.overflow(), 11u);
}

TEST(ServiceTest, StatsAggregateAcrossShards) {
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(service.CreateSession("bob", "s2").allowed);
  (void)service.CheckAccess({"alice", "s1", "read", "ledger", ""});  // Deny.
  (void)service.CheckAccess({"bob", "s2", "read", "ledger", ""});    // Deny.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.decisions, 4u);
  EXPECT_EQ(stats.denials, 2u);
}

// --------------------------------------------------------------- Telemetry

TEST(ServiceTelemetryTest, SnapshotMergesShardsAndCarriesSpans) {
  ServiceConfig config = ShardedConfig(4);
  // Sample everything so the assertions are deterministic.
  config.latency_sample_every = 1;
  config.trace_sample_every = 1;
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(service.CreateSession("bob", "s2").allowed);
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").allowed);
  ASSERT_TRUE(service.AddActiveRole("bob", "s2", "AC").allowed);
  EXPECT_TRUE(
      service.CheckAccess({"alice", "s1", "approve", "budget-request", ""})
          .allowed);
  EXPECT_FALSE(service.CheckAccess({"bob", "s2", "fly", "moon", ""}).allowed);

  const TelemetrySnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.num_shards, 4);
  // Engine counters merged across shards...
  EXPECT_EQ(snap.metrics.FindCounter("decisions_total")->value, 6u);
  EXPECT_EQ(snap.metrics.FindCounter("denials_total")->value, 1u);
  EXPECT_EQ(snap.metrics.FindHistogram("decision_latency_us")->TotalCount(),
            6u);
  // ...alongside the service-boundary series.
  EXPECT_EQ(snap.metrics.FindCounter("service_requests_total")->value, 6u);
  EXPECT_EQ(snap.metrics.FindGauge("service_sessions")->value, 2);

  // At least one span records a full rule cascade, tagged with its shard.
  ASSERT_GE(snap.spans.size(), 1u);
  bool cascade_span = false;
  for (const telemetry::DecisionSpan& span : snap.spans) {
    for (const telemetry::TraceStep& step : span.steps) {
      if (step.kind == telemetry::TraceStep::Kind::kRule) cascade_span = true;
    }
  }
  EXPECT_TRUE(cascade_span);

  const std::string text = service.RenderMetrics();
  EXPECT_NE(text.find("sentinelpp_decisions_total 6"), std::string::npos);
  EXPECT_NE(text.find("sentinelpp_decision_latency_us_count 6"),
            std::string::npos);
  EXPECT_NE(text.find("# trace span#"), std::string::npos);

  const std::string json = service.RenderMetricsJson();
  EXPECT_NE(json.find("\"num_shards\":4"), std::string::npos);
  EXPECT_NE(json.find("\"decisions_total\":6"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
}

TEST(ServiceTelemetryTest, PeriodicReporterFiresPerShardOnSimulatedClock) {
  ServiceConfig config = ShardedConfig(2);
  config.telemetry_report_interval = 10 * kMinute;
  std::mutex mu;
  std::vector<std::string> reports;
  config.telemetry_sink = [&mu, &reports](const std::string& body) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(body);
  };
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  service.AdvanceBy(30 * kMinute);  // Exactly three intervals.

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(reports.size(), 6u);  // 3 ticks x 2 shards.
  int shard0 = 0, shard1 = 0;
  for (const std::string& report : reports) {
    if (report.rfind("# shard 0\n", 0) == 0) ++shard0;
    if (report.rfind("# shard 1\n", 0) == 0) ++shard1;
    EXPECT_NE(report.find("sentinelpp_decisions_total"), std::string::npos);
  }
  EXPECT_EQ(shard0, 3);
  EXPECT_EQ(shard1, 3);
}

// ------------------------------------------------------------- Stress test

/// One scripted step of a user's trace.
struct TraceStep {
  enum Kind { kCreate, kActivate, kCheck, kDrop, kDelete } kind;
  std::string session;
  std::string role;
  std::string operation;
  std::string object;
};

struct RecordedDecision {
  bool allowed;
  std::string rule;
  std::string reason;
};

/// Builds a deterministic per-user trace from the user's assignments.
std::vector<TraceStep> BuildTrace(const Policy& policy,
                                  const UserName& user) {
  std::vector<TraceStep> trace;
  const std::string session = "sess-" + user;
  trace.push_back({TraceStep::kCreate, session, "", "", ""});
  const auto& spec = policy.users().at(user);
  std::vector<RoleName> assigned(spec.assignments.begin(),
                                 spec.assignments.end());
  for (const RoleName& role : assigned) {
    trace.push_back({TraceStep::kActivate, session, role, "", ""});
    const auto role_it = policy.roles().find(role);
    if (role_it != policy.roles().end() &&
        !role_it->second.permissions.empty()) {
      const Permission& perm = *role_it->second.permissions.begin();
      trace.push_back(
          {TraceStep::kCheck, session, "", perm.operation, perm.object});
    }
  }
  // A guaranteed miss, then tear half the state down.
  trace.push_back({TraceStep::kCheck, session, "", "no-such-op", "nowhere"});
  if (!assigned.empty()) {
    trace.push_back({TraceStep::kDrop, session, assigned.front(), "", ""});
  }
  trace.push_back({TraceStep::kCheck, session, "", "no-such-op", "nowhere"});
  trace.push_back({TraceStep::kDelete, session, "", "", ""});
  return trace;
}

RecordedDecision ApplyStep(AuthorizationService& service,
                           const UserName& user, const TraceStep& step) {
  AccessDecision decision;
  switch (step.kind) {
    case TraceStep::kCreate:
      decision = service.CreateSession(user, step.session);
      break;
    case TraceStep::kActivate:
      decision = service.AddActiveRole(user, step.session, step.role);
      break;
    case TraceStep::kCheck:
      decision = service.CheckAccess(
          {user, step.session, step.operation, step.object, ""});
      break;
    case TraceStep::kDrop:
      decision = service.DropActiveRole(user, step.session, step.role);
      break;
    case TraceStep::kDelete:
      decision = service.DeleteSession(step.session);
      break;
  }
  return RecordedDecision{decision.allowed, decision.rule, decision.reason};
}

/// Body of the per-user lockstep stress run, shared by the uncached and
/// cache-enabled arms (the latter hammers the per-shard decision cache
/// from 4 submitter threads — the TSan-relevant configuration).
void RunPerUserStress(size_t decision_cache_capacity) {
  // A policy with no cross-user global constraints (no cardinalities, no
  // duration timers), so sharded and single-shard semantics must coincide
  // exactly. SSD/DSD/user caps are per-user/per-session and stay exact.
  PolicyGenParams params;
  params.seed = 1337;
  params.num_roles = 24;
  params.num_users = 48;
  params.cardinality_frac = 0.0;
  params.duration_frac = 0.0;
  const Policy policy = GeneratePolicy(params);

  std::vector<UserName> users;
  for (const auto& [name, spec] : policy.users()) users.push_back(name);
  std::vector<std::vector<TraceStep>> traces;
  traces.reserve(users.size());
  for (const UserName& user : users) {
    traces.push_back(BuildTrace(policy, user));
  }

  // Concurrent run: 4 submitter threads over a 4-shard service, each
  // thread interleaving its own users step by step.
  ServiceConfig sharded_config = ShardedConfig(4);
  sharded_config.decision_cache_capacity = decision_cache_capacity;
  AuthorizationService sharded(sharded_config);
  ASSERT_TRUE(sharded.LoadPolicy(policy).ok());
  std::vector<std::vector<RecordedDecision>> concurrent(users.size());
  constexpr int kThreads = 4;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      // Round-robin across this thread's users so shard mailboxes see a
      // genuinely mixed interleaving.
      bool progress = true;
      for (size_t step = 0; progress; ++step) {
        progress = false;
        for (size_t u = static_cast<size_t>(t); u < users.size();
             u += kThreads) {
          if (step < traces[u].size()) {
            concurrent[u].push_back(
                ApplyStep(sharded, users[u], traces[u][step]));
            progress = true;
          }
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  sharded.Shutdown();

  // Oracle: the same traces on the synchronous single-shard service.
  AuthorizationService sync(SyncConfig());
  ASSERT_TRUE(sync.LoadPolicy(policy).ok());
  for (size_t u = 0; u < users.size(); ++u) {
    ASSERT_EQ(concurrent[u].size(), traces[u].size()) << users[u];
    for (size_t step = 0; step < traces[u].size(); ++step) {
      const RecordedDecision expected =
          ApplyStep(sync, users[u], traces[u][step]);
      const RecordedDecision& got = concurrent[u][step];
      EXPECT_EQ(got.allowed, expected.allowed)
          << users[u] << " step " << step;
      EXPECT_EQ(got.rule, expected.rule) << users[u] << " step " << step;
      EXPECT_EQ(got.reason, expected.reason)
          << users[u] << " step " << step;
    }
  }
}

TEST(ServiceStressTest, PerUserSequencesMatchSingleShardEngine) {
  RunPerUserStress(/*decision_cache_capacity=*/0);
}

TEST(ServiceStressTest, PerUserSequencesMatchWithDecisionCache) {
  RunPerUserStress(/*decision_cache_capacity=*/512);
}

TEST(ServiceStressTest, ConcurrentBatchesAndAdminBroadcasts) {
  // Batches race with admin broadcasts; every decision must be internally
  // consistent (a real verdict, epoch monotone) and the service must stay
  // deadlock-free. Verdicts may legitimately flip around each broadcast
  // instant; per-decision consistency is the invariant.
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").allowed);

  std::atomic<bool> stop{false};
  std::thread admin([&] {
    for (int i = 0; i < 20; ++i) {
      (void)service.DisableRole("AC");
      (void)service.EnableRole("AC");
    }
    stop.store(true);
  });
  // A scraper races the whole time: metric merges are lock-free reads of
  // the shard registries, span gathering queues behind in-flight work —
  // neither may deadlock, tear, or trip TSan.
  std::thread scraper([&] {
    while (!stop.load()) {
      const std::string text = service.RenderMetrics();
      EXPECT_NE(text.find("sentinelpp_decisions_total"), std::string::npos);
      (void)service.RenderMetricsJson();
    }
  });
  std::vector<AccessRequest> requests(
      64, AccessRequest{"alice", "s1", "read", "ledger", ""});
  uint64_t last_epoch = 0;
  while (!stop.load()) {
    for (const AccessDecision& decision :
         service.CheckAccessBatch(requests)) {
      // alice's PM chain never touches AC, so her reads stay allowed
      // throughout the broadcast storm.
      EXPECT_TRUE(decision.allowed);
      EXPECT_GE(decision.epoch, last_epoch);
      last_epoch = std::max(last_epoch, decision.epoch);
    }
  }
  admin.join();
  scraper.join();
  const uint64_t final_epoch = service.admin_epoch();
  EXPECT_GE(final_epoch, 41u);  // Load + 40 role toggles.
  // The scrape after the storm still aggregates a coherent view.
  const TelemetrySnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.metrics.FindCounter("decisions_total")->value,
            service.Stats().decisions);
}

}  // namespace
}  // namespace sentinel
