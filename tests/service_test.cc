// AuthorizationService: routing determinism, admin broadcast visibility,
// shutdown drain, batch parity, and a multi-threaded stress test asserting
// per-user decision sequences match the single-shard engine on the same
// request trace.

#include "service/authorization_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <limits>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "api/sentinelpp.h"
#include "core/decision_log.h"
#include "service/mailbox.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"

namespace sentinel {
namespace {

ServiceConfig ShardedConfig(int shards) {
  ServiceConfig config;
  config.num_shards = shards;
  config.start_time = testutil::Noon();
  return config;
}

ServiceConfig SyncConfig() {
  ServiceConfig config;
  config.synchronous = true;
  config.start_time = testutil::Noon();
  return config;
}

// ------------------------------------------------------------ Facade basics

TEST(ServiceTest, SynchronousModeMatchesEngineSemantics) {
  AuthorizationService service(SyncConfig());
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  EXPECT_EQ(service.num_shards(), 1);
  EXPECT_TRUE(service.synchronous());

  EXPECT_TRUE(service.CreateSession("alice", "s1").ok());
  EXPECT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  AccessRequest ok_request{"alice", "s1", "read", "ledger", ""};
  AccessDecision allowed = service.CheckAccess(ok_request);
  EXPECT_TRUE(allowed.allowed);
  EXPECT_FALSE(allowed.rule.empty());
  EXPECT_EQ(allowed.shard, 0u);

  AccessRequest bad_request{"alice", "s1", "erase", "ledger", ""};
  AccessDecision denied = service.CheckAccess(bad_request);
  EXPECT_FALSE(denied.allowed);
  EXPECT_EQ(denied.reason, "Permission Denied");

  // Legacy session-keyed check (no user): resolved via the registry.
  AccessRequest by_session{"", "s1", "read", "ledger", ""};
  EXPECT_TRUE(service.CheckAccess(by_session).allowed);
}

TEST(ServiceTest, UnknownSessionDeniedOnEveryTopology) {
  for (int shards : {1, 4}) {
    AuthorizationService service(ShardedConfig(shards));
    ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
    AccessRequest request{"", "ghost-session", "read", "ledger", ""};
    AccessDecision decision = service.CheckAccess(request);
    EXPECT_FALSE(decision.allowed);
    EXPECT_EQ(decision.reason, "Permission Denied");
  }
}

// -------------------------------------------------------------- Routing

TEST(ServiceTest, RoutingIsDeterministicAcrossInstances) {
  AuthorizationService a(ShardedConfig(4));
  AuthorizationService b(ShardedConfig(4));
  for (int i = 0; i < 64; ++i) {
    const std::string user = SyntheticUserName(i);
    EXPECT_EQ(a.ShardOf(user), b.ShardOf(user)) << user;
    EXPECT_LT(a.ShardOf(user), 4u);
  }
}

TEST(ServiceTest, SessionsLiveOnTheUsersHomeShard) {
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s-alice").ok());
  ASSERT_TRUE(service.CreateSession("bob", "s-bob").ok());

  const uint32_t alice_home = service.ShardOf("alice");
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      const bool has =
                          engine.rbac().db().GetSession("s-alice").ok();
                      EXPECT_EQ(has,
                                static_cast<uint32_t>(shard) == alice_home);
                    });
  }
  // The decision reports the shard that made it.
  (void)service.AddActiveRole("alice", "s-alice", "PM");
  AccessRequest request{"alice", "s-alice", "read", "ledger", ""};
  EXPECT_EQ(service.CheckAccess(request).shard, alice_home);
}

// ------------------------------------------------- Admin broadcast + epoch

TEST(ServiceTest, AdminBroadcastVisibleOnAllShardsAfterBarrier) {
  AuthorizationService service(ShardedConfig(4));
  Policy policy = testutil::EnterpriseXyzPolicy();
  ASSERT_TRUE(service.LoadPolicy(policy).ok());
  const uint64_t epoch_after_load = service.admin_epoch();
  EXPECT_GE(epoch_after_load, 1u);

  ASSERT_TRUE(service.CreateSession("carol", "s-carol").ok());
  // carol is only a Clerk: activating PC is denied pre-update.
  EXPECT_FALSE(service.AddActiveRole("carol", "s-carol", "PC").ok());

  Policy updated = policy;
  auto carol = updated.MutableUser("carol");
  ASSERT_TRUE(carol.ok());
  (*carol)->assignments.insert("PC");
  auto report = service.ApplyPolicyUpdate(updated);
  ASSERT_TRUE(report.ok()) << report.status();
  // Incremental updates commit through the pauseless swap path: no epoch
  // barrier, so admin_epoch() deliberately does not move — invalidation
  // flows through the rule-pool generation in the verdict stamps instead.
  EXPECT_EQ(service.admin_epoch(), epoch_after_load);
  EXPECT_EQ(service.Stats().policy_swaps, 1u);

  // Post-barrier, the new assignment is visible wherever it is queried.
  EXPECT_TRUE(service.AddActiveRole("carol", "s-carol", "PC").ok());
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_TRUE(
                          engine.rbac().db().IsAssigned("carol", "PC"));
                    });
  }
  // Decisions taken after the broadcast carry its epoch (or later).
  AccessRequest request{"carol", "s-carol", "read", "ledger", ""};
  EXPECT_GE(service.CheckAccess(request).epoch, service.admin_epoch());
}

TEST(ServiceTest, RoleDisableBroadcastDeactivatesEverywhere) {
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "sa").ok());
  ASSERT_TRUE(service.CreateSession("carol", "sc").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "sa", "PM").ok());
  ASSERT_TRUE(service.AddActiveRole("carol", "sc", "Clerk").ok());

  EXPECT_TRUE(service.DisableRole("Clerk").ok());
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_FALSE(engine.role_state().IsEnabled("Clerk"));
                    });
  }
  // carol's active Clerk instance was force-deactivated on her home shard.
  EXPECT_FALSE(
      service.CheckAccess({"carol", "sc", "read", "ledger", ""}).allowed);
}

TEST(ServiceTest, TimeAdvanceFansOutToEveryShard) {
  AuthorizationService service(ShardedConfig(3));
  ASSERT_TRUE(service.LoadPolicy(testutil::HospitalPolicy()).ok());
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_TRUE(engine.role_state().IsEnabled("DayDoctor"));
                    });
  }
  // Advance past the 16:00 shift end; the generated temporal rules must
  // fire on every shard.
  service.AdvanceTo(MakeTime(2026, 7, 6, 16, 30, 0));
  EXPECT_EQ(service.Now(), MakeTime(2026, 7, 6, 16, 30, 0));
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    service.Inspect(static_cast<uint32_t>(shard),
                    [&](const AuthorizationEngine& engine) {
                      EXPECT_FALSE(
                          engine.role_state().IsEnabled("DayDoctor"));
                      EXPECT_EQ(engine.Now(),
                                MakeTime(2026, 7, 6, 16, 30, 0));
                    });
  }
}

// ------------------------------------------------------------------ Batch

TEST(ServiceTest, BatchMatchesSingleCallDecisions) {
  AuthorizationService sharded(ShardedConfig(4));
  AuthorizationService sync(SyncConfig());
  for (AuthorizationService* service : {&sharded, &sync}) {
    ASSERT_TRUE(service->LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
    ASSERT_TRUE(service->CreateSession("alice", "s1").ok());
    ASSERT_TRUE(service->AddActiveRole("alice", "s1", "PM").ok());
    ASSERT_TRUE(service->CreateSession("bob", "s2").ok());
    ASSERT_TRUE(service->AddActiveRole("bob", "s2", "AC").ok());
  }
  std::vector<AccessRequest> requests = {
      {"alice", "s1", "read", "ledger", ""},
      {"bob", "s2", "write", "approval", ""},
      {"alice", "s1", "write", "approval", ""},  // Not alice's permission.
      {"bob", "s2", "approve", "budget-request", ""},
      {"alice", "s1", "approve", "budget-request", ""},
  };
  const std::vector<AccessDecision> concurrent =
      sharded.CheckAccessBatch(requests);
  const std::vector<AccessDecision> reference =
      sync.CheckAccessBatch(requests);
  ASSERT_EQ(concurrent.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(concurrent[i].allowed, reference[i].allowed) << i;
    EXPECT_EQ(concurrent[i].rule, reference[i].rule) << i;
    EXPECT_EQ(concurrent[i].reason, reference[i].reason) << i;
  }
}

// --------------------------------------------------------------- Shutdown
// (The mailbox-level drain-not-drop contract is pinned in mailbox_test.cc.)

TEST(ServiceTest, ShutdownDrainsQueuedWorkAndRefusesNewWork) {
  AuthorizationService service(ShardedConfig(2));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  std::vector<AccessRequest> requests(
      5000, AccessRequest{"alice", "s1", "read", "ledger", ""});
  std::vector<AccessDecision> decisions;
  std::thread submitter(
      [&] { decisions = service.CheckAccessBatch(requests); });
  // Let the batch hit the mailboxes, then shut down: queued envelopes must
  // still be decided for real — mailboxes drain, they don't drop.
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  service.Shutdown();
  submitter.join();

  // If the submitter enqueued before Shutdown closed the mailboxes, every
  // decision is a real engine verdict; if Shutdown won the race (slow
  // schedulers, sanitizer builds) the batch is refused explicitly. Either
  // way the call completes — no hang, no torn batch, no silent drop.
  ASSERT_EQ(decisions.size(), requests.size());
  for (const AccessDecision& decision : decisions) {
    if (decision.allowed) {
      EXPECT_NE(decision.rule, "");
    } else {
      EXPECT_EQ(decision.reason, "service is shut down");
    }
  }
  // The whole batch targets one user, so one shard: the envelope is pushed
  // atomically and decided as a unit — mixed verdicts would mean a torn
  // batch.
  EXPECT_TRUE(std::all_of(decisions.begin(), decisions.end(),
                          [](const AccessDecision& d) { return d.allowed; }) ||
              std::none_of(decisions.begin(), decisions.end(),
                           [](const AccessDecision& d) { return d.allowed; }));

  // Post-shutdown submissions get the shutdown decision, not a hang.
  AccessDecision after =
      service.CheckAccess({"alice", "s1", "read", "ledger", ""});
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, "service is shut down");
  EXPECT_EQ(after.outcome, AccessOutcome::kShutdown);
  EXPECT_TRUE(ToStatus(after).IsFailedPrecondition());
  EXPECT_FALSE(service.CreateSession("bob", "s2").ok());
  service.Shutdown();  // Idempotent.
}

TEST(ServiceTest, AdvanceAfterShutdownIsARefusalNotASilentNoop) {
  // Concurrent mode: the timer thread is gone after Shutdown, so the call
  // must say the advance did not happen instead of returning as if it had.
  AuthorizationService service(ShardedConfig(2));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  const Time target = testutil::Noon() + kHour;
  ASSERT_TRUE(service.AdvanceTo(target).ok());
  EXPECT_EQ(service.Now(), target);
  service.Shutdown();
  const Status refused = service.AdvanceTo(target + kHour);
  EXPECT_TRUE(refused.IsFailedPrecondition()) << refused;
  EXPECT_EQ(service.Now(), target);  // Time did not move.

  // Synchronous mode takes the inline path; same contract.
  AuthorizationService sync(SyncConfig());
  ASSERT_TRUE(sync.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(sync.AdvanceBy(kMinute).ok());
  sync.Shutdown();
  EXPECT_TRUE(sync.AdvanceBy(kMinute).IsFailedPrecondition());
}

TEST(ServiceTest, AdvanceRacingShutdownNeverFabricatesTime) {
  // A timer caller racing Shutdown: every call either advanced time for
  // real (OK) or reported the refusal — Now() reflects exactly the
  // successful advances.
  AuthorizationService service(ShardedConfig(2));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  const Time base = testutil::Noon();
  Time last_success = service.Now();
  std::thread advancer([&] {
    for (int i = 1; i <= 200; ++i) {
      const Time target = base + i * kMinute;
      const Status status = service.AdvanceTo(target);
      if (status.ok()) {
        last_success = target;
      } else {
        EXPECT_TRUE(status.IsFailedPrecondition()) << status;
      }
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  service.Shutdown();
  advancer.join();
  EXPECT_EQ(service.Now(), last_success);
}

// ---------------------------------------------------- Overload protection

/// One-shot gate for deterministic shard stalls: the injected fault parks
/// the shard thread on Wait() until the test calls Open(). Signaled() lets
/// the test wait until the stall is actually in effect (the fault envelope
/// has been dequeued), so mailbox depths observed afterwards are stable.
class Gate {
 public:
  void Open() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      open_ = true;
    }
    cv_.notify_all();
  }
  void Wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return open_; });
  }
  void Signal() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      signaled_ = true;
    }
    cv_.notify_all();
  }
  void AwaitSignal() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return signaled_; });
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  bool signaled_ = false;
};

/// Parks `shard` until gate.Open(); returns once the stall is in effect.
void StallShard(AuthorizationService& service, uint32_t shard, Gate& gate) {
  ASSERT_TRUE(service.InjectShardFault(shard, [&gate] {
    gate.Signal();
    gate.Wait();
  }));
  gate.AwaitSignal();
}

ServiceConfig OverloadConfig(size_t capacity, OverloadPolicy policy,
                             Duration default_deadline = 0) {
  ServiceConfig config = ShardedConfig(1);
  config.mailbox_capacity = capacity;
  config.overload_policy = policy;
  config.default_deadline = default_deadline;
  return config;
}

TEST(ServiceOverloadTest, ConfigValidationRejectsIncoherentKnobs) {
  ServiceConfig shed_unbounded;
  shed_unbounded.overload_policy = OverloadPolicy::kShed;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(shed_unbounded)
                  .IsInvalidArgument());
  EXPECT_FALSE(AuthorizationService::Create(shed_unbounded).ok());

  ServiceConfig negative_deadline;
  negative_deadline.default_deadline = -5;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(negative_deadline)
                  .IsInvalidArgument());

  ServiceConfig valid;
  valid.mailbox_capacity = 16;
  valid.overload_policy = OverloadPolicy::kShed;
  valid.default_deadline = 50 * kMillisecond;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(valid).ok());
}

TEST(ServiceOverloadTest, ShedAtFullMailboxIsExplicitAndCounted) {
  AuthorizationService service(
      OverloadConfig(/*capacity=*/1, OverloadPolicy::kShed));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  Gate gate;
  StallShard(service, 0, gate);
  // One request is admitted into the single mailbox slot (its submitter
  // blocks for the verdict)...
  std::thread admitted_submitter([&] {
    const AccessDecision decision =
        service.CheckAccess({"alice", "s1", "read", "ledger", ""});
    EXPECT_EQ(decision.outcome, AccessOutcome::kDecided);
    EXPECT_TRUE(decision.allowed);
  });
  while (service.MailboxDepth(0) < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // ...and the next is shed instantly: an explicit overload verdict, not a
  // policy deny and not a wait.
  const AccessDecision shed =
      service.CheckAccess({"alice", "s1", "read", "ledger", ""});
  EXPECT_EQ(shed.outcome, AccessOutcome::kOverloaded);
  EXPECT_FALSE(shed.allowed);
  EXPECT_EQ(shed.reason, "overloaded: shed");
  EXPECT_NE(shed.reason, "Permission Denied");
  EXPECT_TRUE(ToStatus(shed).IsResourceExhausted());

  gate.Open();
  admitted_submitter.join();
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.expired, 0u);
  // The shed never reached an engine: decisions count only real verdicts.
  EXPECT_EQ(stats.decisions, 3u);  // create + activate + admitted check.

  // The overload series surface in the merged scrape and the admin report.
  const std::string text = service.RenderMetrics();
  EXPECT_NE(text.find("sentinelpp_mailbox_shed_total 1"), std::string::npos);
  EXPECT_NE(text.find("sentinelpp_mailbox_queue_wait_us"), std::string::npos);
  service.Inspect(0, [](const AuthorizationEngine& engine) {
    const std::string report = GenerateAdminReport(engine);
    EXPECT_NE(report.find("overload: shed 1  expired 0"), std::string::npos);
  });
}

TEST(ServiceOverloadTest, BlockPolicyWaitsForSpaceInsteadOfShedding) {
  AuthorizationService service(
      OverloadConfig(/*capacity=*/1, OverloadPolicy::kBlock));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  Gate gate;
  StallShard(service, 0, gate);
  std::atomic<int> decided{0};
  std::vector<std::thread> submitters;
  for (int i = 0; i < 3; ++i) {
    submitters.emplace_back([&] {
      const AccessDecision decision =
          service.CheckAccess({"alice", "s1", "read", "ledger", ""});
      EXPECT_EQ(decision.outcome, AccessOutcome::kDecided);
      EXPECT_TRUE(decision.allowed);
      decided.fetch_add(1);
    });
  }
  // All three are either queued (one slot) or blocked for space; none is
  // answered while the shard is stalled.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(decided.load(), 0);
  EXPECT_LE(service.MailboxDepth(0), 1u);

  gate.Open();
  for (std::thread& thread : submitters) thread.join();
  EXPECT_EQ(decided.load(), 3);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.expired, 0u);
  // Backpressure never let the queue exceed its bound (the stall fault is
  // the one exempt envelope on top).
  EXPECT_LE(service.MailboxPeakDepth(0), 1u + 1u);
}

TEST(ServiceOverloadTest, DeadlineExpiryInQueueIsOverloadNotPolicyDeny) {
  AuthorizationService service(OverloadConfig(
      /*capacity=*/0, OverloadPolicy::kBlock, /*default_deadline=*/0));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  Gate gate;
  StallShard(service, 0, gate);
  AccessRequest dated{"alice", "s1", "read", "ledger", ""};
  dated.deadline = 2 * kMillisecond;  // Wall-clock budget.
  AccessDecision expired;
  std::thread submitter(
      [&] { expired = service.CheckAccess(dated); });
  // Hold the shard well past the request's budget, then let it drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  submitter.join();

  EXPECT_EQ(expired.outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(expired.reason, "overloaded: deadline exceeded");
  EXPECT_TRUE(ToStatus(expired).IsResourceExhausted());
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.shed, 0u);
  // The expired request consumed no engine time.
  EXPECT_EQ(stats.decisions, 2u);  // create + activate only.

  // With the shard drained, the same dated request is decided normally.
  const AccessDecision fresh = service.CheckAccess(dated);
  EXPECT_EQ(fresh.outcome, AccessOutcome::kDecided);
  EXPECT_TRUE(fresh.allowed);
}

TEST(ServiceOverloadTest, DefaultDeadlineAppliesAndPerRequestOverrides) {
  // Service-wide 2ms budget; one request opts out with kNoDeadline and
  // must survive a stall that expires the defaulted one.
  AuthorizationService service(OverloadConfig(
      /*capacity=*/0, OverloadPolicy::kBlock,
      /*default_deadline=*/2 * kMillisecond));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  Gate gate;
  StallShard(service, 0, gate);
  AccessRequest defaulted{"alice", "s1", "read", "ledger", ""};
  AccessRequest patient{"alice", "s1", "read", "ledger", ""};
  patient.deadline = AccessRequest::kNoDeadline;
  AccessDecision defaulted_decision, patient_decision;
  std::thread a([&] { defaulted_decision = service.CheckAccess(defaulted); });
  std::thread b([&] { patient_decision = service.CheckAccess(patient); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  a.join();
  b.join();

  EXPECT_EQ(defaulted_decision.outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(patient_decision.outcome, AccessOutcome::kDecided);
  EXPECT_TRUE(patient_decision.allowed);
  EXPECT_EQ(service.Stats().expired, 1u);
}

TEST(ServiceOverloadTest, HugeDeadlineSaturatesInsteadOfWrapping) {
  // Regression: `submit_ns + deadline_us * 1000` used to overflow for huge
  // budgets — signed UB that in practice wrapped negative, turning "wait
  // practically forever" into "already expired on arrival". The arithmetic
  // now saturates to INT64_MAX at both steps.
  AuthorizationService service(OverloadConfig(
      /*capacity=*/0, OverloadPolicy::kBlock, /*default_deadline=*/0));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  constexpr Duration kMaxBudget = std::numeric_limits<Duration>::max();
  // The saturating cases straddle the first guard (kMax/1000) exactly; the
  // largest in-range budget exercises the second (submit_ns headroom).
  for (const Duration budget :
       {kMaxBudget, kMaxBudget / 1000 + 1, kMaxBudget / 1000}) {
    AccessRequest patient{"alice", "s1", "read", "ledger", ""};
    patient.deadline = budget;
    const AccessDecision decision = service.CheckAccess(patient);
    EXPECT_EQ(decision.outcome, AccessOutcome::kDecided) << budget;
    EXPECT_TRUE(decision.allowed) << budget;
  }

  // The batch path resolves deadlines through the same helper.
  AccessRequest dated{"alice", "s1", "read", "ledger", ""};
  dated.deadline = kMaxBudget;
  const std::vector<AccessRequest> batch = {dated, dated};
  const std::vector<AccessDecision> decisions =
      service.CheckAccessBatch(batch);
  for (const AccessDecision& decision : decisions) {
    EXPECT_EQ(decision.outcome, AccessOutcome::kDecided);
  }
  EXPECT_EQ(service.Stats().expired, 0u);
}

TEST(ServiceOverloadTest, BatchReportsPerItemOutcomes) {
  AuthorizationService service(OverloadConfig(
      /*capacity=*/0, OverloadPolicy::kBlock, /*default_deadline=*/0));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  Gate gate;
  StallShard(service, 0, gate);
  // One envelope (single user -> single shard), three fates: a patient
  // item decides, a dated item expires, and the dated deny shows that
  // overload outcomes are disjoint from policy denials.
  std::vector<AccessRequest> requests = {
      {"alice", "s1", "read", "ledger", "", AccessRequest::kNoDeadline},
      {"alice", "s1", "read", "ledger", "", 2 * kMillisecond},
      {"alice", "s1", "erase", "ledger", "", AccessRequest::kNoDeadline},
  };
  std::vector<AccessDecision> decisions;
  std::thread submitter(
      [&] { decisions = service.CheckAccessBatch(requests); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  gate.Open();
  submitter.join();

  ASSERT_EQ(decisions.size(), 3u);
  EXPECT_EQ(decisions[0].outcome, AccessOutcome::kDecided);
  EXPECT_TRUE(decisions[0].allowed);
  EXPECT_EQ(decisions[1].outcome, AccessOutcome::kOverloaded);
  EXPECT_EQ(decisions[1].reason, "overloaded: deadline exceeded");
  EXPECT_EQ(decisions[2].outcome, AccessOutcome::kDecided);
  EXPECT_FALSE(decisions[2].allowed);
  EXPECT_EQ(decisions[2].reason, "Permission Denied");
  EXPECT_EQ(service.Stats().expired, 1u);
}

TEST(ServiceOverloadTest, BatchShedsWholeEnvelopePerItem) {
  AuthorizationService service(
      OverloadConfig(/*capacity=*/1, OverloadPolicy::kShed));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  Gate gate;
  StallShard(service, 0, gate);
  std::thread admitted_submitter([&] {
    (void)service.CheckAccess({"alice", "s1", "read", "ledger", ""});
  });
  while (service.MailboxDepth(0) < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  const std::vector<AccessRequest> requests(
      4, AccessRequest{"alice", "s1", "read", "ledger", ""});
  const std::vector<AccessDecision> decisions =
      service.CheckAccessBatch(requests);
  ASSERT_EQ(decisions.size(), 4u);
  for (const AccessDecision& decision : decisions) {
    EXPECT_EQ(decision.outcome, AccessOutcome::kOverloaded);
    EXPECT_EQ(decision.reason, "overloaded: shed");
  }
  gate.Open();
  admitted_submitter.join();
  // Shed counting is per request, not per envelope.
  EXPECT_EQ(service.Stats().shed, 4u);
}

TEST(ServiceOverloadTest, EpochBarrierStaysSoundWhenProducersBlock) {
  // Admin traffic rides the exempt lane: a full mailbox and blocked
  // decision producers can delay a broadcast (the shard is busy) but never
  // starve it, and a producer admitted after the admin envelope observes
  // its epoch — FIFO puts the blocked producer behind the broadcast.
  AuthorizationService service(
      OverloadConfig(/*capacity=*/1, OverloadPolicy::kBlock));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());
  const uint64_t epoch_before = service.admin_epoch();

  Gate gate;
  StallShard(service, 0, gate);
  std::thread admitted([&] {
    (void)service.CheckAccess({"alice", "s1", "read", "ledger", ""});
  });
  while (service.MailboxDepth(0) < 1) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  // Fills past capacity through the exempt lane; the barrier completes
  // only when the stalled shard drains.
  std::atomic<bool> broadcast_done{false};
  std::thread admin([&] {
    (void)service.EnableRole("AC");
    broadcast_done.store(true);
  });
  // A producer blocked on mailbox space, behind the queued admin envelope.
  AccessDecision late;
  std::thread blocked([&] {
    late = service.CheckAccess({"alice", "s1", "read", "ledger", ""});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(broadcast_done.load());  // Still stalled, not lost.

  gate.Open();
  admitted.join();
  admin.join();
  blocked.join();
  const uint64_t epoch_after = service.admin_epoch();
  EXPECT_GT(epoch_after, epoch_before);
  // The blocked producer was admitted after the admin envelope, so its
  // decision reflects the post-broadcast world.
  EXPECT_EQ(late.outcome, AccessOutcome::kDecided);
  EXPECT_GE(late.epoch, epoch_after);
}

TEST(ServiceOverloadTest, SynchronousModeRunsInlineWithoutOverload) {
  // No queue in synchronous mode: deadlines cannot expire before dispatch
  // and nothing sheds — the oracle configuration stays overload-free.
  ServiceConfig config = SyncConfig();
  config.mailbox_capacity = 1;
  config.default_deadline = 1;  // 1us — instantly expirable if queued.
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());
  for (int i = 0; i < 100; ++i) {
    const AccessDecision decision =
        service.CheckAccess({"alice", "s1", "read", "ledger", ""});
    EXPECT_EQ(decision.outcome, AccessOutcome::kDecided);
    EXPECT_TRUE(decision.allowed);
  }
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, 0u);
  EXPECT_EQ(stats.expired, 0u);
}

// ---------------------------------------------------- Decision audit ring

TEST(ServiceTest, DecisionLogRingBufferCapsAndCountsOverflow) {
  DecisionLog log(4);
  for (int i = 0; i < 10; ++i) {
    Decision decision;
    decision.Allow("rule" + std::to_string(i));
    log.Push(DecisionRecord{i, "op", decision});
  }
  EXPECT_EQ(log.size(), 4u);
  EXPECT_EQ(log.overflow(), 6u);
  EXPECT_EQ(log[0].when, 6);  // Oldest retained.
  EXPECT_EQ(log.back().when, 9);
  // Reverse iteration (report rendering) sees newest first.
  auto it = log.rbegin();
  EXPECT_EQ(it->when, 9);
  // Shrinking drops the oldest surplus and counts it.
  log.set_capacity(2);
  EXPECT_EQ(log.size(), 2u);
  EXPECT_EQ(log.overflow(), 8u);
  EXPECT_EQ(log[0].when, 8);
  // Capacity 0 disables recording; pushes count as overflow.
  log.set_capacity(0);
  Decision d;
  d.Allow("x");
  log.Push(DecisionRecord{99, "op", d});
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(log.overflow(), 11u);
}

TEST(ServiceTest, StatsAggregateAcrossShards) {
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.CreateSession("bob", "s2").ok());
  (void)service.CheckAccess({"alice", "s1", "read", "ledger", ""});  // Deny.
  (void)service.CheckAccess({"bob", "s2", "read", "ledger", ""});    // Deny.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.decisions, 4u);
  EXPECT_EQ(stats.denials, 2u);
}

// --------------------------------------------------------------- Telemetry

TEST(ServiceTelemetryTest, SnapshotMergesShardsAndCarriesSpans) {
  ServiceConfig config = ShardedConfig(4);
  // Sample everything so the assertions are deterministic.
  config.latency_sample_every = 1;
  config.trace_sample_every = 1;
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.CreateSession("bob", "s2").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());
  ASSERT_TRUE(service.AddActiveRole("bob", "s2", "AC").ok());
  EXPECT_TRUE(
      service.CheckAccess({"alice", "s1", "approve", "budget-request", ""})
          .allowed);
  EXPECT_FALSE(service.CheckAccess({"bob", "s2", "fly", "moon", ""}).allowed);

  const TelemetrySnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.num_shards, 4);
  // Engine counters merged across shards...
  EXPECT_EQ(snap.metrics.FindCounter("decisions_total")->value, 6u);
  EXPECT_EQ(snap.metrics.FindCounter("denials_total")->value, 1u);
  EXPECT_EQ(snap.metrics.FindHistogram("decision_latency_us")->TotalCount(),
            6u);
  // ...alongside the service-boundary series.
  EXPECT_EQ(snap.metrics.FindCounter("service_requests_total")->value, 6u);
  EXPECT_EQ(snap.metrics.FindGauge("service_sessions")->value, 2);

  // At least one span records a full rule cascade, tagged with its shard.
  ASSERT_GE(snap.spans.size(), 1u);
  bool cascade_span = false;
  for (const telemetry::DecisionSpan& span : snap.spans) {
    for (const telemetry::TraceStep& step : span.steps) {
      if (step.kind == telemetry::TraceStep::Kind::kRule) cascade_span = true;
    }
  }
  EXPECT_TRUE(cascade_span);

  const std::string text = service.RenderMetrics();
  EXPECT_NE(text.find("sentinelpp_decisions_total 6"), std::string::npos);
  EXPECT_NE(text.find("sentinelpp_decision_latency_us_count 6"),
            std::string::npos);
  EXPECT_NE(text.find("# trace span#"), std::string::npos);

  const std::string json = service.RenderMetricsJson();
  EXPECT_NE(json.find("\"num_shards\":4"), std::string::npos);
  EXPECT_NE(json.find("\"decisions_total\":6"), std::string::npos);
  EXPECT_NE(json.find("\"spans\":["), std::string::npos);
}

TEST(ServiceTelemetryTest, PeriodicReporterFiresPerShardOnSimulatedClock) {
  ServiceConfig config = ShardedConfig(2);
  config.telemetry_report_interval = 10 * kMinute;
  std::mutex mu;
  std::vector<std::string> reports;
  config.telemetry_sink = [&mu, &reports](const std::string& body) {
    std::lock_guard<std::mutex> lock(mu);
    reports.push_back(body);
  };
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  service.AdvanceBy(30 * kMinute);  // Exactly three intervals.

  std::lock_guard<std::mutex> lock(mu);
  ASSERT_EQ(reports.size(), 6u);  // 3 ticks x 2 shards.
  int shard0 = 0, shard1 = 0;
  for (const std::string& report : reports) {
    if (report.rfind("# shard 0\n", 0) == 0) ++shard0;
    if (report.rfind("# shard 1\n", 0) == 0) ++shard1;
    EXPECT_NE(report.find("sentinelpp_decisions_total"), std::string::npos);
  }
  EXPECT_EQ(shard0, 3);
  EXPECT_EQ(shard1, 3);
}

// ------------------------------------------------------------- Stress test

/// One scripted step of a user's trace.
struct TraceStep {
  enum Kind { kCreate, kActivate, kCheck, kDrop, kDelete } kind;
  std::string session;
  std::string role;
  std::string operation;
  std::string object;
};

struct RecordedDecision {
  bool allowed;
  std::string rule;
  std::string reason;
};

/// Builds a deterministic per-user trace from the user's assignments.
std::vector<TraceStep> BuildTrace(const Policy& policy,
                                  const UserName& user) {
  std::vector<TraceStep> trace;
  const std::string session = "sess-" + user;
  trace.push_back({TraceStep::kCreate, session, "", "", ""});
  const auto& spec = policy.users().at(user);
  std::vector<RoleName> assigned(spec.assignments.begin(),
                                 spec.assignments.end());
  for (const RoleName& role : assigned) {
    trace.push_back({TraceStep::kActivate, session, role, "", ""});
    const auto role_it = policy.roles().find(role);
    if (role_it != policy.roles().end() &&
        !role_it->second.permissions.empty()) {
      const Permission& perm = *role_it->second.permissions.begin();
      trace.push_back(
          {TraceStep::kCheck, session, "", perm.operation, perm.object});
    }
  }
  // A guaranteed miss, then tear half the state down.
  trace.push_back({TraceStep::kCheck, session, "", "no-such-op", "nowhere"});
  if (!assigned.empty()) {
    trace.push_back({TraceStep::kDrop, session, assigned.front(), "", ""});
  }
  trace.push_back({TraceStep::kCheck, session, "", "no-such-op", "nowhere"});
  trace.push_back({TraceStep::kDelete, session, "", "", ""});
  return trace;
}

RecordedDecision ApplyStep(AuthorizationService& service,
                           const UserName& user, const TraceStep& step) {
  AccessDecision decision;
  switch (step.kind) {
    case TraceStep::kCreate:
      decision = service.CreateSession(user, step.session).ToDecision();
      break;
    case TraceStep::kActivate:
      decision =
          service.AddActiveRole(user, step.session, step.role).ToDecision();
      break;
    case TraceStep::kCheck:
      decision = service.CheckAccess(
          {user, step.session, step.operation, step.object, ""});
      break;
    case TraceStep::kDrop:
      decision =
          service.DropActiveRole(user, step.session, step.role).ToDecision();
      break;
    case TraceStep::kDelete:
      decision = service.DeleteSession(step.session).ToDecision();
      break;
  }
  return RecordedDecision{decision.allowed, decision.rule, decision.reason};
}

/// Body of the per-user lockstep stress run, shared by the uncached and
/// cache-enabled arms (the latter hammers the per-shard decision cache
/// from 4 submitter threads — the TSan-relevant configuration).
void RunPerUserStress(size_t decision_cache_capacity) {
  // A policy with no cross-user global constraints (no cardinalities, no
  // duration timers), so sharded and single-shard semantics must coincide
  // exactly. SSD/DSD/user caps are per-user/per-session and stay exact.
  PolicyGenParams params;
  params.seed = 1337;
  params.num_roles = 24;
  params.num_users = 48;
  params.cardinality_frac = 0.0;
  params.duration_frac = 0.0;
  const Policy policy = GeneratePolicy(params);

  std::vector<UserName> users;
  for (const auto& [name, spec] : policy.users()) users.push_back(name);
  std::vector<std::vector<TraceStep>> traces;
  traces.reserve(users.size());
  for (const UserName& user : users) {
    traces.push_back(BuildTrace(policy, user));
  }

  // Concurrent run: 4 submitter threads over a 4-shard service, each
  // thread interleaving its own users step by step.
  ServiceConfig sharded_config = ShardedConfig(4);
  sharded_config.decision_cache_capacity = decision_cache_capacity;
  AuthorizationService sharded(sharded_config);
  ASSERT_TRUE(sharded.LoadPolicy(policy).ok());
  std::vector<std::vector<RecordedDecision>> concurrent(users.size());
  constexpr int kThreads = 4;
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      // Round-robin across this thread's users so shard mailboxes see a
      // genuinely mixed interleaving.
      bool progress = true;
      for (size_t step = 0; progress; ++step) {
        progress = false;
        for (size_t u = static_cast<size_t>(t); u < users.size();
             u += kThreads) {
          if (step < traces[u].size()) {
            concurrent[u].push_back(
                ApplyStep(sharded, users[u], traces[u][step]));
            progress = true;
          }
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  sharded.Shutdown();

  // Oracle: the same traces on the synchronous single-shard service.
  AuthorizationService sync(SyncConfig());
  ASSERT_TRUE(sync.LoadPolicy(policy).ok());
  for (size_t u = 0; u < users.size(); ++u) {
    ASSERT_EQ(concurrent[u].size(), traces[u].size()) << users[u];
    for (size_t step = 0; step < traces[u].size(); ++step) {
      const RecordedDecision expected =
          ApplyStep(sync, users[u], traces[u][step]);
      const RecordedDecision& got = concurrent[u][step];
      EXPECT_EQ(got.allowed, expected.allowed)
          << users[u] << " step " << step;
      EXPECT_EQ(got.rule, expected.rule) << users[u] << " step " << step;
      EXPECT_EQ(got.reason, expected.reason)
          << users[u] << " step " << step;
    }
  }
}

TEST(ServiceStressTest, PerUserSequencesMatchSingleShardEngine) {
  RunPerUserStress(/*decision_cache_capacity=*/0);
}

TEST(ServiceStressTest, PerUserSequencesMatchWithDecisionCache) {
  RunPerUserStress(/*decision_cache_capacity=*/512);
}

TEST(ServiceStressTest, OverloadShedStressBoundedCountedAndDrained) {
  // Overload acceptance run: repeated stall-injected pressure against a
  // tiny bounded mailbox under the shed policy. Invariants proved here:
  //  * memory stays bounded — peak mailbox depth never exceeds the
  //    capacity plus the single in-flight exempt stall envelope;
  //  * every submitted request is answered, and sheds are counted exactly
  //    (caller-observed outcomes reconcile with ServiceStats);
  //  * decided outcomes never diverge from the synchronous oracle;
  //  * shutdown still drains-not-drops (asserted by the final Stats
  //    reconciliation running after Shutdown()).
  constexpr size_t kCapacity = 8;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 2000;
  ServiceConfig config = ShardedConfig(2);
  config.mailbox_capacity = kCapacity;
  config.overload_policy = OverloadPolicy::kShed;
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());
  ASSERT_TRUE(service.CreateSession("bob", "s2").ok());
  ASSERT_TRUE(service.AddActiveRole("bob", "s2", "AC").ok());

  // The request mix is read-only with statically-known verdicts, so any
  // decided answer can be checked against the oracle without replaying an
  // interleaving: requests[i] expects kExpected[i].
  const std::vector<AccessRequest> kMix = {
      {"alice", "s1", "read", "ledger", ""},        // allowed
      {"alice", "s1", "erase", "ledger", ""},       // denied
      {"bob", "s2", "write", "approval", ""},       // allowed
      {"bob", "s2", "fly", "moon", ""},             // denied
  };
  const std::vector<bool> kExpected = {true, false, true, false};

  // Stall injector: keeps parking each shard briefly, with at most one
  // exempt fault envelope in flight per shard at any time.
  std::atomic<bool> stop_faults{false};
  std::thread fault_injector([&] {
    while (!stop_faults.load()) {
      for (int shard = 0; shard < service.num_shards(); ++shard) {
        std::atomic<bool> fault_done{false};
        if (!service.InjectShardFault(static_cast<uint32_t>(shard), [&] {
              std::this_thread::sleep_for(std::chrono::microseconds(500));
              fault_done.store(true);
            })) {
          return;
        }
        while (!fault_done.load() && !stop_faults.load()) {
          std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
      }
    }
  });

  std::atomic<uint64_t> observed_shed{0};
  std::atomic<uint64_t> observed_decided{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const size_t pick = static_cast<size_t>((t + i) % kMix.size());
        if (i % 16 == 0) {
          // Periodic batch arm: one envelope per involved shard; sheds are
          // reported per item.
          const std::vector<AccessDecision> decisions =
              service.CheckAccessBatch(kMix);
          ASSERT_EQ(decisions.size(), kMix.size());
          for (size_t j = 0; j < decisions.size(); ++j) {
            if (decisions[j].outcome == AccessOutcome::kOverloaded) {
              observed_shed.fetch_add(1);
            } else {
              ASSERT_EQ(decisions[j].outcome, AccessOutcome::kDecided);
              EXPECT_EQ(decisions[j].allowed, kExpected[j]) << j;
              observed_decided.fetch_add(1);
            }
          }
          continue;
        }
        const AccessDecision decision = service.CheckAccess(kMix[pick]);
        if (decision.outcome == AccessOutcome::kOverloaded) {
          EXPECT_EQ(decision.reason, "overloaded: shed");
          observed_shed.fetch_add(1);
        } else {
          ASSERT_EQ(decision.outcome, AccessOutcome::kDecided);
          EXPECT_EQ(decision.allowed, kExpected[pick]) << pick;
          observed_decided.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : submitters) thread.join();
  stop_faults.store(true);
  fault_injector.join();

  // Bounded: the cap held on every shard (+1 for the in-flight exempt
  // stall envelope).
  for (int shard = 0; shard < service.num_shards(); ++shard) {
    EXPECT_LE(service.MailboxPeakDepth(static_cast<uint32_t>(shard)),
              kCapacity + 1)
        << "shard " << shard;
  }

  // Complete & reconciled: every submission was answered, and the
  // service's shed counter agrees exactly with what callers saw.
  const uint64_t total_submitted =
      static_cast<uint64_t>(kThreads) * kPerThread / 16 * kMix.size() +
      static_cast<uint64_t>(kThreads) * (kPerThread - kPerThread / 16);
  EXPECT_EQ(observed_decided.load() + observed_shed.load(), total_submitted);
  service.Shutdown();  // Drain everything before the final reconciliation.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.shed, observed_shed.load());
  EXPECT_EQ(stats.expired, 0u);
  // Setup made 4 decisions; every decided request made exactly one more —
  // sheds consumed no engine time.
  EXPECT_EQ(stats.decisions, observed_decided.load() + 4u);
}

TEST(ServiceStressTest, ConcurrentBatchesAndAdminBroadcasts) {
  // Batches race with admin broadcasts; every decision must be internally
  // consistent (a real verdict, epoch monotone) and the service must stay
  // deadlock-free. Verdicts may legitimately flip around each broadcast
  // instant; per-decision consistency is the invariant.
  AuthorizationService service(ShardedConfig(4));
  ASSERT_TRUE(service.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "PM").ok());

  std::atomic<bool> stop{false};
  std::thread admin([&] {
    for (int i = 0; i < 20; ++i) {
      (void)service.DisableRole("AC");
      (void)service.EnableRole("AC");
    }
    stop.store(true);
  });
  // A scraper races the whole time: metric merges are lock-free reads of
  // the shard registries, span gathering queues behind in-flight work —
  // neither may deadlock, tear, or trip TSan.
  std::thread scraper([&] {
    while (!stop.load()) {
      const std::string text = service.RenderMetrics();
      EXPECT_NE(text.find("sentinelpp_decisions_total"), std::string::npos);
      (void)service.RenderMetricsJson();
    }
  });
  std::vector<AccessRequest> requests(
      64, AccessRequest{"alice", "s1", "read", "ledger", ""});
  uint64_t last_epoch = 0;
  while (!stop.load()) {
    for (const AccessDecision& decision :
         service.CheckAccessBatch(requests)) {
      // alice's PM chain never touches AC, so her reads stay allowed
      // throughout the broadcast storm.
      EXPECT_TRUE(decision.allowed);
      EXPECT_GE(decision.epoch, last_epoch);
      last_epoch = std::max(last_epoch, decision.epoch);
    }
  }
  admin.join();
  scraper.join();
  const uint64_t final_epoch = service.admin_epoch();
  EXPECT_GE(final_epoch, 41u);  // Load + 40 role toggles.
  // The scrape after the storm still aggregates a coherent view.
  const TelemetrySnapshot snap = service.Snapshot();
  EXPECT_EQ(snap.metrics.FindCounter("decisions_total")->value,
            service.Stats().decisions);
}

}  // namespace
}  // namespace sentinel
