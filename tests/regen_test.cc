#include <gtest/gtest.h>

#include "common/calendar.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// Incremental policy-update / rule-regeneration tests — the paper's §5
/// scenario ("shift time of role day doctor changed from 8-4 to 9-5").
class RegenTest : public ::testing::Test {
 protected:
  RegenTest() : clock_(testutil::Noon()), engine_(&clock_) {}

  void Load(const Policy& policy) {
    ASSERT_TRUE(engine_.LoadPolicy(policy).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

TEST_F(RegenTest, RequiresLoadedPolicy) {
  EXPECT_TRUE(engine_.ApplyPolicyUpdate(testutil::EnterpriseXyzPolicy())
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(RegenTest, NoChangeRegeneratesNothing) {
  const Policy policy = testutil::EnterpriseXyzPolicy();
  Load(policy);
  const size_t rules_before = engine_.rule_manager().rule_count();
  auto report = engine_.ApplyPolicyUpdate(policy);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->roles_affected, 0);
  EXPECT_EQ(report->rules_removed, 0);
  EXPECT_EQ(report->rules_added, 0);
  EXPECT_EQ(engine_.rule_manager().rule_count(), rules_before);
}

TEST_F(RegenTest, ShiftTimeChangeTakesEffect) {
  // The paper's example: day doctor shift 8-16 changed to 9-17.
  auto before = PolicyParser::Parse(R"(
policy "hospital"
role DayDoctor { enable: 08:00:00 - 16:00:00 }
user dana { assign: DayDoctor }
)");
  ASSERT_TRUE(before.ok());
  Load(*before);
  ASSERT_TRUE(engine_.CreateSession("dana", "s1").allowed);

  auto after = PolicyParser::Parse(R"(
policy "hospital"
role DayDoctor { enable: 09:00:00 - 17:00:00 }
user dana { assign: DayDoctor }
)");
  ASSERT_TRUE(after.ok());
  auto report = engine_.ApplyPolicyUpdate(*after);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->roles_affected, 1);
  EXPECT_GT(report->rules_added, 0);

  // 16:30 is inside the NEW window only.
  engine_.AdvanceTo(MakeTime(2026, 7, 6, 16, 30, 0));
  EXPECT_TRUE(engine_.role_state().IsEnabled("DayDoctor"));
  EXPECT_TRUE(engine_.AddActiveRole("dana", "s1", "DayDoctor").allowed);
  // 17:00: the new boundary disables it (the old 16:00 one is orphaned
  // and silent).
  engine_.AdvanceTo(MakeTime(2026, 7, 6, 17, 0, 0));
  EXPECT_FALSE(engine_.role_state().IsEnabled("DayDoctor"));
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "DayDoctor"));
}

TEST_F(RegenTest, CardinalityChangeOnlyRebuildsThatRole) {
  Policy before = testutil::EnterpriseXyzPolicy();
  Load(before);
  const uint64_t fired_before = engine_.rule_manager().total_fired();
  (void)fired_before;
  Policy after = before;
  (*after.MutableRole("PC"))->activation_cardinality = 1;
  auto report = engine_.ApplyPolicyUpdate(after);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->roles_affected, 1);
  // PC now has AAR + CC (2 rules); before it had just AAR (1 rule).
  EXPECT_EQ(report->rules_removed, 1);
  EXPECT_EQ(report->rules_added, 2);
  EXPECT_TRUE(engine_.rule_manager().Find("CC.PC").ok());

  // The new cardinality is live.
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.CreateSession("carol", "s2").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
  // carol is not PC-authorized; use alice's second session instead.
  ASSERT_TRUE(engine_.CreateSession("alice", "s3").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("alice", "s3", "PC").allowed);
}

TEST_F(RegenTest, AddingSodSetAffectsItsMembers) {
  Policy before = testutil::EnterpriseXyzPolicy();
  Load(before);
  Policy after = before;
  SodSet set;
  set.name = "DSoD1";
  set.roles = {"PM", "AM"};
  set.n = 2;
  ASSERT_TRUE(after.AddDsd(std::move(set)).ok());
  auto report = engine_.ApplyPolicyUpdate(after);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->roles_affected, 2);  // PM and AM.
  EXPECT_TRUE(engine_.rbac().dsd().GetSet("DSoD1").ok());
}

TEST_F(RegenTest, RemovingRoleRemovesItsRules) {
  Policy before = testutil::EnterpriseXyzPolicy();
  Load(before);
  ASSERT_TRUE(engine_.rule_manager().Find("AAR.Clerk").ok());
  Policy after = before;
  ASSERT_TRUE(after.RemoveRole("Clerk").ok());
  auto report = engine_.ApplyPolicyUpdate(after);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_FALSE(engine_.rule_manager().Find("AAR.Clerk").ok());
  EXPECT_FALSE(engine_.rbac().db().HasRole("Clerk"));
  // Requests against the removed role fall to default deny.
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("carol", "s1", "Clerk").allowed);
}

TEST_F(RegenTest, AddingRoleGeneratesItsRules) {
  Policy before = testutil::EnterpriseXyzPolicy();
  Load(before);
  Policy after = before;
  RoleSpec intern;
  intern.name = "Intern";
  ASSERT_TRUE(after.AddRole(std::move(intern)).ok());
  auto user = after.MutableUser("carol");
  ASSERT_TRUE(user.ok());
  (*user)->assignments.insert("Intern");
  auto report = engine_.ApplyPolicyUpdate(after);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(engine_.rule_manager().Find("AAR.Intern").ok());
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("carol", "s1", "Intern").allowed);
}

TEST_F(RegenTest, UserCapChangeRebuildsSpecializedRule) {
  auto before = PolicyParser::Parse(R"(
policy "cap"
role A {}
role B {}
user jane { assign: A, B  max-active: 1 }
)");
  ASSERT_TRUE(before.ok());
  Load(*before);
  ASSERT_TRUE(engine_.CreateSession("jane", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("jane", "s1", "A").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("jane", "s1", "B").allowed);

  Policy after = *before;
  (*after.MutableUser("jane"))->max_active_roles = 2;
  auto report = engine_.ApplyPolicyUpdate(after);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->users_affected, 1);
  EXPECT_EQ(report->roles_affected, 0);
  EXPECT_TRUE(engine_.AddActiveRole("jane", "s1", "B").allowed);
}

TEST_F(RegenTest, DirectiveChangeRebuildsDirectiveRules) {
  auto before = PolicyParser::Parse(R"(
policy "sec"
role A { permission: read(x) }
user u { assign: A }
threshold guard { count: 10  window: 60s }
)");
  ASSERT_TRUE(before.ok());
  Load(*before);
  Policy after = *before;
  // Tighten the threshold (replace directive list).
  Policy rebuilt("sec");
  for (const auto& [name, spec] : after.roles()) {
    ASSERT_TRUE(rebuilt.AddRole(spec).ok());
  }
  for (const auto& [name, spec] : after.users()) {
    ASSERT_TRUE(rebuilt.AddUser(spec).ok());
  }
  ASSERT_TRUE(
      rebuilt.AddThreshold(ThresholdDirective{"guard", 2, 60 * kSecond, {}})
          .ok());
  auto report = engine_.ApplyPolicyUpdate(rebuilt);
  ASSERT_TRUE(report.ok());
  EXPECT_TRUE(report->directives_rebuilt);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  EXPECT_EQ(engine_.security().alert_count(), 1);
}

TEST_F(RegenTest, RepeatedRegenerationsStayConsistent) {
  // Flip a role's cardinality back and forth; rules must track exactly.
  Policy base = testutil::EnterpriseXyzPolicy();
  Load(base);
  for (int i = 0; i < 5; ++i) {
    Policy with_cc = base;
    (*with_cc.MutableRole("PC"))->activation_cardinality = 2;
    ASSERT_TRUE(engine_.ApplyPolicyUpdate(with_cc).ok());
    EXPECT_TRUE(engine_.rule_manager().Find("CC.PC").ok());
    ASSERT_TRUE(engine_.ApplyPolicyUpdate(base).ok());
    EXPECT_FALSE(engine_.rule_manager().Find("CC.PC").ok());
    EXPECT_TRUE(engine_.rule_manager().Find("AAR.PC").ok());
  }
  // Behaviour intact after churn.
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
}

TEST_F(RegenTest, DurationChangeRegeneratesPlusChain) {
  auto before = PolicyParser::Parse(R"(
policy "dur"
role OnCall { max-activation: 1h }
user u { assign: OnCall }
)");
  ASSERT_TRUE(before.ok());
  Load(*before);
  Policy after = *before;
  (*after.MutableRole("OnCall"))->max_activation = 10 * kMinute;
  ASSERT_TRUE(engine_.ApplyPolicyUpdate(after).ok());
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "OnCall").allowed);
  engine_.AdvanceBy(11 * kMinute);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
}

TEST_F(RegenTest, ThresholdDisableRolesRoundTripsThroughDsl) {
  auto policy = PolicyParser::Parse(R"(
policy "sec"
role A {}
role Critical {}
threshold guard { count: 3  window: 60s  disable: CA
                  disable-roles: Critical, A }
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  ASSERT_EQ(policy->thresholds().size(), 1u);
  EXPECT_EQ(policy->thresholds()[0].disable_roles,
            (std::vector<RoleName>{"Critical", "A"}));
  auto reparsed = PolicyParser::Parse(PolicyToText(*policy));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(*reparsed, *policy);
  // Unknown roles in disable-roles are rejected by validation.
  EXPECT_FALSE(PolicyParser::Parse(R"(
policy "bad"
role A {}
threshold g { count: 1  window: 1s  disable-roles: Ghost }
)")
                   .ok());
}

TEST_F(RegenTest, InvalidUpdateRejectedAtomically) {
  Policy base = testutil::EnterpriseXyzPolicy();
  Load(base);
  Policy bad = base;
  RoleSpec broken;
  broken.name = "Broken";
  broken.juniors.insert("Ghost");
  ASSERT_TRUE(bad.AddRole(std::move(broken)).ok());
  EXPECT_FALSE(engine_.ApplyPolicyUpdate(bad).ok());
  // The loaded policy is unchanged and the engine still works.
  EXPECT_EQ(engine_.policy(), base);
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("carol", "s1", "Clerk").allowed);
}

}  // namespace
}  // namespace sentinel
