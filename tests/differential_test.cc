#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>

#include "baseline/direct_enforcer.h"
#include "core/engine.h"
#include "service/authorization_service.h"
#include "service/policer.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"
#include "workload/request_gen.h"
#include "workload/scenario_gen.h"

namespace sentinel {

/// Seed for the randomized cached-service harness. Set by main() from
/// --seed=N (replay) or std::random_device (fresh exploration); always
/// printed so any failure is reproducible.
uint64_t g_harness_seed = 1;

namespace {

/// THE reproduction's correctness anchor: for random policies and random
/// request streams, the OWTE-rule engine and the hand-coded DirectEnforcer
/// must produce identical decision sequences and identical end states. If
/// this holds across seeds and policy shapes, the rule synthesis (the
/// paper's contribution) is faithful to the specification it was compiled
/// from.
struct DiffCase {
  uint64_t policy_seed;
  uint64_t request_seed;
  PolicyGenParams policy_params;
  RequestGenParams request_params;
  const char* label;
};

std::string StateFingerprint(const RbacSystem& rbac,
                             const RoleStateTable& state) {
  std::string out;
  for (const SessionId& session : rbac.db().SessionIds()) {
    auto info = rbac.db().GetSession(session);
    if (!info.ok()) continue;
    out += session + "/" + (*info)->user + ":";
    for (const RoleName& role : (*info)->active_roles) out += role + ",";
    out += ";";
  }
  out += "|UA:";
  for (const UserName& user : rbac.db().users()) {
    out += user + "=";
    for (const RoleName& role : rbac.db().AssignedRoles(user)) {
      out += role + ",";
    }
    out += ";";
  }
  out += "|disabled:";
  for (const RoleName& role : state.DisabledRoles()) out += role + ",";
  return out;
}

class DifferentialTest : public ::testing::TestWithParam<DiffCase> {};

TEST_P(DifferentialTest, EngineMatchesDirectEnforcer) {
  const DiffCase& test_case = GetParam();

  PolicyGenParams policy_params = test_case.policy_params;
  policy_params.seed = test_case.policy_seed;
  const Policy policy = GeneratePolicy(policy_params);
  ASSERT_TRUE(policy.Validate().ok());

  RequestGenParams request_params = test_case.request_params;
  request_params.seed = test_case.request_seed;
  RequestGenerator generator(policy, request_params);
  const std::vector<Request> requests = generator.Generate();
  ASSERT_GT(requests.size(), 0u);

  SimulatedClock engine_clock(testutil::Noon());
  AuthorizationEngine engine(&engine_clock);
  ASSERT_TRUE(engine.LoadPolicy(policy).ok());

  SimulatedClock baseline_clock(testutil::Noon());
  DirectEnforcer baseline(&baseline_clock);
  ASSERT_TRUE(baseline.LoadPolicy(policy).ok());

  for (size_t i = 0; i < requests.size(); ++i) {
    const Request& request = requests[i];
    const Decision engine_decision = ApplyRequest(engine, request);
    const Decision baseline_decision = ApplyRequest(baseline, request);
    ASSERT_EQ(engine_decision.allowed, baseline_decision.allowed)
        << "request #" << i << " " << RequestKindToString(request.kind)
        << " user=" << request.user << " session=" << request.session
        << " role=" << request.role << " op=" << request.operation
        << " obj=" << request.object
        << "\n  engine: rule=" << engine_decision.rule
        << " reason=" << engine_decision.reason
        << "\n  baseline: rule=" << baseline_decision.rule
        << " reason=" << baseline_decision.reason;
    if (!engine_decision.allowed) {
      ASSERT_EQ(engine_decision.reason, baseline_decision.reason)
          << "request #" << i << " " << RequestKindToString(request.kind);
    }
  }

  // End states coincide exactly.
  EXPECT_EQ(StateFingerprint(engine.rbac(), engine.role_state()),
            StateFingerprint(baseline.rbac(), baseline.role_state()));
  EXPECT_EQ(engine.Now(), baseline.Now());
}

PolicyGenParams PlainParams() {
  PolicyGenParams params;
  params.num_roles = 25;
  params.num_users = 40;
  return params;
}

PolicyGenParams RichParams() {
  PolicyGenParams params;
  params.num_roles = 30;
  params.num_users = 50;
  params.hierarchy_prob = 0.7;
  params.ssd_sets = 3;
  params.dsd_sets = 3;
  params.cardinality_frac = 0.3;
  params.duration_frac = 0.25;
  params.user_cap_frac = 0.3;
  params.prereq_frac = 0.2;
  return params;
}

PolicyGenParams TemporalParams() {
  PolicyGenParams params;
  params.num_roles = 20;
  params.num_users = 30;
  params.duration_frac = 0.4;
  params.shift_frac = 0.4;
  return params;
}

PolicyGenParams ContextParams() {
  PolicyGenParams params;
  params.num_roles = 20;
  params.num_users = 30;
  params.context_frac = 0.5;
  params.duration_frac = 0.2;
  return params;
}

PolicyGenParams EverythingParams() {
  PolicyGenParams params;
  params.num_roles = 35;
  params.num_users = 50;
  params.hierarchy_prob = 0.6;
  params.ssd_sets = 3;
  params.dsd_sets = 3;
  params.cardinality_frac = 0.25;
  params.duration_frac = 0.25;
  params.shift_frac = 0.25;
  params.context_frac = 0.25;
  params.user_cap_frac = 0.25;
  params.prereq_frac = 0.25;
  return params;
}

RequestGenParams ShortStream() {
  RequestGenParams params;
  params.num_requests = 800;
  return params;
}

RequestGenParams LongStream() {
  RequestGenParams params;
  params.num_requests = 3000;
  params.max_advance = 6 * kHour + 1;  // Crosses shift boundaries.
  return params;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, DifferentialTest,
    ::testing::Values(
        DiffCase{1, 101, PlainParams(), ShortStream(), "plain_1"},
        DiffCase{2, 202, PlainParams(), ShortStream(), "plain_2"},
        DiffCase{3, 303, PlainParams(), LongStream(), "plain_long"},
        DiffCase{4, 404, RichParams(), ShortStream(), "rich_1"},
        DiffCase{5, 505, RichParams(), ShortStream(), "rich_2"},
        DiffCase{6, 606, RichParams(), LongStream(), "rich_long"},
        DiffCase{7, 707, TemporalParams(), LongStream(), "temporal_1"},
        DiffCase{8, 808, TemporalParams(), LongStream(), "temporal_2"},
        DiffCase{9, 909, RichParams(), LongStream(), "rich_long_2"},
        DiffCase{10, 1010, TemporalParams(), LongStream(), "temporal_3"},
        DiffCase{11, 1111, ContextParams(), ShortStream(), "context_1"},
        DiffCase{12, 1212, ContextParams(), LongStream(), "context_2"},
        DiffCase{13, 1313, EverythingParams(), LongStream(), "all_1"},
        DiffCase{14, 1414, EverythingParams(), LongStream(), "all_2"},
        DiffCase{15, 1515, EverythingParams(), LongStream(), "all_3"},
        DiffCase{16, 1616, EverythingParams(), ShortStream(), "all_4"}),
    [](const ::testing::TestParamInfo<DiffCase>& info) {
      return info.param.label;
    });

/// Long soak: 10k requests over a rich temporal/context policy with three
/// interleaved policy updates — the heaviest single equivalence check.
TEST(DifferentialSoakTest, TenThousandRequestsWithUpdates) {
  PolicyGenParams policy_params;
  policy_params.seed = 4711;
  policy_params.num_roles = 40;
  policy_params.num_users = 60;
  policy_params.hierarchy_prob = 0.6;
  policy_params.ssd_sets = 4;
  policy_params.dsd_sets = 4;
  policy_params.cardinality_frac = 0.25;
  policy_params.duration_frac = 0.25;
  policy_params.shift_frac = 0.25;
  policy_params.context_frac = 0.25;
  policy_params.user_cap_frac = 0.25;
  const Policy base = GeneratePolicy(policy_params);

  // Three successive edits of increasing scope.
  std::vector<Policy> updates;
  {
    Policy u1 = base;
    (*u1.MutableRole(SyntheticRoleName(2)))->activation_cardinality = 2;
    updates.push_back(u1);
    Policy u2 = u1;
    (*u2.MutableUser(SyntheticUserName(3)))->max_active_roles = 2;
    updates.push_back(u2);
    Policy u3 = u2;
    (*u3.MutableRole(SyntheticRoleName(5)))->max_activation = 45 * kMinute;
    SodSet set;
    set.name = "DSDsoak";
    set.roles = {SyntheticRoleName(8), SyntheticRoleName(9),
                 SyntheticRoleName(10)};
    set.n = 2;
    ASSERT_TRUE(u3.AddDsd(std::move(set)).ok());
    updates.push_back(u3);
  }

  RequestGenParams request_params;
  request_params.seed = 1812;
  request_params.num_requests = 10000;
  request_params.max_advance = 3 * kHour + 1;
  const std::vector<Request> requests =
      RequestGenerator(base, request_params).Generate();

  SimulatedClock engine_clock(testutil::Noon());
  AuthorizationEngine engine(&engine_clock);
  ASSERT_TRUE(engine.LoadPolicy(base).ok());
  SimulatedClock baseline_clock(testutil::Noon());
  DirectEnforcer baseline(&baseline_clock);
  ASSERT_TRUE(baseline.LoadPolicy(base).ok());

  size_t next_update = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (next_update < updates.size() &&
        i == (next_update + 1) * requests.size() / 4) {
      ASSERT_TRUE(engine.ApplyPolicyUpdate(updates[next_update]).ok());
      ASSERT_TRUE(baseline.ApplyPolicyUpdate(updates[next_update]).ok());
      ++next_update;
    }
    const Decision engine_decision = ApplyRequest(engine, requests[i]);
    const Decision baseline_decision = ApplyRequest(baseline, requests[i]);
    ASSERT_EQ(engine_decision.allowed, baseline_decision.allowed)
        << "request #" << i << " " << RequestKindToString(requests[i].kind)
        << " user=" << requests[i].user << " role=" << requests[i].role
        << "\n  engine: " << engine_decision.rule << " / "
        << engine_decision.reason << "\n  baseline: "
        << baseline_decision.rule << " / " << baseline_decision.reason;
  }
  EXPECT_EQ(StateFingerprint(engine.rbac(), engine.role_state()),
            StateFingerprint(baseline.rbac(), baseline.role_state()));
  EXPECT_EQ(engine.rule_manager().dropped_firings(), 0u);
}

/// Differential check across a policy update: both systems apply the same
/// incremental change mid-stream and must stay in lockstep.
TEST(DifferentialUpdateTest, LockstepAcrossPolicyUpdate) {
  PolicyGenParams policy_params = RichParams();
  policy_params.seed = 77;
  const Policy before = GeneratePolicy(policy_params);

  Policy after = before;
  // Change a handful of roles: new cardinality and a new DSD set.
  auto role = after.MutableRole(SyntheticRoleName(3));
  ASSERT_TRUE(role.ok());
  (*role)->activation_cardinality = 2;
  SodSet set;
  set.name = "DSDnew";
  set.roles = {SyntheticRoleName(5), SyntheticRoleName(6),
               SyntheticRoleName(7)};
  set.n = 2;
  ASSERT_TRUE(after.AddDsd(std::move(set)).ok());
  ASSERT_TRUE(after.Validate().ok());

  RequestGenParams request_params;
  request_params.seed = 999;
  request_params.num_requests = 600;
  RequestGenerator generator(before, request_params);
  const std::vector<Request> requests = generator.Generate();

  SimulatedClock engine_clock(testutil::Noon());
  AuthorizationEngine engine(&engine_clock);
  ASSERT_TRUE(engine.LoadPolicy(before).ok());
  SimulatedClock baseline_clock(testutil::Noon());
  DirectEnforcer baseline(&baseline_clock);
  ASSERT_TRUE(baseline.LoadPolicy(before).ok());

  for (size_t i = 0; i < requests.size(); ++i) {
    if (i == requests.size() / 2) {
      ASSERT_TRUE(engine.ApplyPolicyUpdate(after).ok());
      ASSERT_TRUE(baseline.ApplyPolicyUpdate(after).ok());
    }
    const Decision engine_decision = ApplyRequest(engine, requests[i]);
    const Decision baseline_decision = ApplyRequest(baseline, requests[i]);
    ASSERT_EQ(engine_decision.allowed, baseline_decision.allowed)
        << "request #" << i << " " << RequestKindToString(requests[i].kind)
        << " role=" << requests[i].role << " engine="
        << engine_decision.rule << "/" << engine_decision.reason
        << " baseline=" << baseline_decision.rule << "/"
        << baseline_decision.reason;
  }
  EXPECT_EQ(StateFingerprint(engine.rbac(), engine.role_state()),
            StateFingerprint(baseline.rbac(), baseline.role_state()));
}

// ================================================================
// Satellite: cached sharded service vs uncached oracle (PR 4)
// ================================================================

/// Adapts the AuthorizationService facade to the engine-shaped surface
/// ApplyRequest() expects, folding AccessDecision back into Decision.
struct ServiceAdapter {
  AuthorizationService& service;

  static Decision ToDecision(const AccessDecision& decision) {
    Decision d;
    if (decision.allowed) {
      d.Allow(decision.rule);
    } else {
      d.Deny(decision.rule, decision.reason);
    }
    return d;
  }

  /// Mutators answer the typed AdminResult now; the denial reason (the
  /// surface the lockstep harness asserts on) rides the status message.
  static Decision ToDecision(const AdminResult& result) {
    Decision d;
    if (result.ok()) {
      d.Allow("");
    } else {
      d.Deny("", result.status.message());
    }
    return d;
  }

  Decision CreateSession(const UserName& user, const SessionId& session) {
    return ToDecision(service.CreateSession(user, session));
  }
  Decision DeleteSession(const SessionId& session) {
    return ToDecision(service.DeleteSession(session));
  }
  Decision AddActiveRole(const UserName& user, const SessionId& session,
                         const RoleName& role) {
    return ToDecision(service.AddActiveRole(user, session, role));
  }
  Decision DropActiveRole(const UserName& user, const SessionId& session,
                          const RoleName& role) {
    return ToDecision(service.DropActiveRole(user, session, role));
  }
  Decision CheckAccess(const SessionId& session, const OperationName& op,
                       const ObjectName& obj, const std::string& purpose) {
    AccessRequest request;
    request.session = session;
    request.operation = op;
    request.object = obj;
    request.purpose = purpose;
    return ToDecision(service.CheckAccess(request));
  }
  Decision AssignUser(const UserName& user, const RoleName& role) {
    return ToDecision(service.AssignUser(user, role));
  }
  Decision DeassignUser(const UserName& user, const RoleName& role) {
    return ToDecision(service.DeassignUser(user, role));
  }
  Decision EnableRole(const RoleName& role) {
    return ToDecision(service.EnableRole(role));
  }
  Decision DisableRole(const RoleName& role) {
    return ToDecision(service.DisableRole(role));
  }
  void SetContext(const std::string& key, const std::string& value) {
    service.SetContext(key, value);
  }
  void AdvanceTo(Time t) { service.AdvanceTo(t); }
  Time Now() const { return service.Now(); }
};

/// Policy shape for the cached-service harness. Activation cardinalities
/// are global-scope and enforced per shard by design (see the
/// AuthorizationService caveat), so the single-engine oracle excludes
/// them; everything per-user / per-session / temporal is fair game.
PolicyGenParams CachedHarnessPolicyParams(uint64_t seed) {
  PolicyGenParams params;
  params.seed = seed ^ 0x9e3779b97f4a7c15ull;
  params.num_roles = 28;
  params.num_users = 40;
  params.hierarchy_prob = 0.6;
  params.ssd_sets = 3;
  params.dsd_sets = 3;
  params.cardinality_frac = 0.0;
  params.duration_frac = 0.25;
  params.shift_frac = 0.35;  // Periodic enable/disable boundaries.
  params.context_frac = 0.25;
  params.user_cap_frac = 0.25;
  params.prereq_frac = 0.2;
  return params;
}

/// ≥10k randomized operations — checks, session create/drop, role
/// activate/drop, assign/deassign broadcasts, enable/disable, clock
/// advances across shift boundaries, context flips — through a cached
/// sharded service and the uncached DirectEnforcer oracle in lockstep.
/// Every kCheckAccess is issued twice against the service: the replay
/// must match both the first verdict and the oracle, which drives the
/// hit path hard while the interleaved mutations exercise staleness.
/// With `fastpath` the replays are answered caller-side from the shards'
/// published cache snapshots — the zero-hop read path must be invisible
/// to this oracle.
void RunCachedServiceHarness(uint64_t seed, bool fastpath) {
  const Policy policy = GeneratePolicy(CachedHarnessPolicyParams(seed));
  ASSERT_TRUE(policy.Validate().ok());

  // Two mid-stream policy edits: revoke a permission, then grant it back.
  Policy revoked = policy;
  Permission moved_perm;
  {
    auto role = revoked.MutableRole(SyntheticRoleName(1));
    ASSERT_TRUE(role.ok());
    ASSERT_FALSE((*role)->permissions.empty());
    moved_perm = *(*role)->permissions.begin();
    (*role)->permissions.erase((*role)->permissions.begin());
  }
  Policy granted = revoked;
  {
    auto role = granted.MutableRole(SyntheticRoleName(1));
    ASSERT_TRUE(role.ok());
    (*role)->permissions.insert(moved_perm);
  }

  RequestGenParams request_params;
  request_params.seed = seed;
  request_params.num_requests = 12000;
  request_params.max_advance = 45 * kMinute + 1;
  const std::vector<Request> requests =
      RequestGenerator(policy, request_params).Generate();
  ASSERT_GE(requests.size(), 10000u);

  ServiceConfig config;
  config.num_shards = 3;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 4096;
  config.decision_cache_fastpath = fastpath;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(policy).ok());
  ServiceAdapter cached{service};

  SimulatedClock oracle_clock(testutil::Noon());
  DirectEnforcer oracle(&oracle_clock);
  ASSERT_TRUE(oracle.LoadPolicy(policy).ok());

  const Policy* updates[] = {&revoked, &granted};
  size_t next_update = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    if (next_update < 2 && i == (next_update + 1) * requests.size() / 3) {
      // The stream's runtime assignments can make a re-validation fail
      // (e.g. a new UA pair now conflicts with policy SSD); that outcome
      // is seed-dependent but must be IDENTICAL on both sides, and a
      // rejected update must leave both systems unchanged and in step.
      const auto service_update =
          service.ApplyPolicyUpdate(*updates[next_update]);
      const Status oracle_update =
          oracle.ApplyPolicyUpdate(*updates[next_update]);
      ASSERT_EQ(service_update.ok(), oracle_update.ok())
          << "--seed=" << seed << " update #" << next_update
          << "\n  service: " << service_update.status().message()
          << "\n  oracle: " << oracle_update.message();
      ++next_update;
    }
    const Request& request = requests[i];
    const Decision got = ApplyRequest(cached, request);
    const Decision want = ApplyRequest(oracle, request);
    ASSERT_EQ(got.allowed, want.allowed)
        << "--seed=" << seed << " request #" << i << " "
        << RequestKindToString(request.kind) << " user=" << request.user
        << " session=" << request.session << " role=" << request.role
        << " op=" << request.operation << " obj=" << request.object
        << "\n  cached service: rule=" << got.rule
        << " reason=" << got.reason << "\n  oracle: rule=" << want.rule
        << " reason=" << want.reason;
    if (request.kind == RequestKind::kCheckAccess) {
      if (!want.allowed) {
        ASSERT_EQ(got.reason, want.reason)
            << "--seed=" << seed << " request #" << i;
      }
      // Immediate replay: nothing changed in between, so the (likely
      // cached) second verdict must agree with the dispatched first.
      const Decision again = ApplyRequest(cached, request);
      ASSERT_EQ(again.allowed, want.allowed)
          << "--seed=" << seed << " replay of request #" << i
          << " op=" << request.operation << " obj=" << request.object;
    }
  }

  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.cache_misses, 0u) << "--seed=" << seed;
  if (fastpath) {
    EXPECT_GT(stats.fastpath_hits, 0u) << "--seed=" << seed;
  } else {
    EXPECT_GT(stats.cache_hits, 0u) << "--seed=" << seed;
  }
}

TEST(CachedServiceDifferentialTest, TenThousandOpsZeroDivergences) {
  std::cerr << "[harness] cached-service differential seed: --seed="
            << g_harness_seed << "\n";
  RunCachedServiceHarness(g_harness_seed, /*fastpath=*/false);
}

/// The same 12k-op lockstep with the zero-hop read path on: caller-side
/// snapshot replays must never diverge from the oracle, across admin
/// broadcasts, policy edits, session churn and shift boundaries.
TEST(CachedServiceDifferentialTest, FastPathTenThousandOpsZeroDivergences) {
  std::cerr << "[harness] fast-path differential seed: --seed="
            << g_harness_seed << "\n";
  RunCachedServiceHarness(g_harness_seed, /*fastpath=*/true);
}

/// The policed arm: the same 12k-op lockstep with per-principal admission
/// quotas on. The oracle side runs its own bare Policer with identical
/// quotas and the same injected logical clock; a service refusal must
/// happen exactly when the oracle policer refuses (and carry the typed
/// "over quota" reason), and every admitted request must still match the
/// DirectEnforcer verdict — zero divergences in either direction.
/// QuotaEnforcement::kAlways keeps refusals deterministic (independent of
/// mailbox depth), and the fast path stays off so every check passes the
/// admission edge on both sides.
TEST(CachedServiceDifferentialTest, PolicedAdmissionZeroDivergences) {
  const uint64_t seed = g_harness_seed;
  std::cerr << "[harness] policed differential seed: --seed=" << seed
            << "\n";
  const Policy policy = GeneratePolicy(CachedHarnessPolicyParams(seed));
  ASSERT_TRUE(policy.Validate().ok());

  RequestGenParams request_params;
  request_params.seed = seed;
  request_params.num_requests = 12000;
  request_params.max_advance = 45 * kMinute + 1;
  const std::vector<Request> requests =
      RequestGenerator(policy, request_params).Generate();

  // One logical admission clock drives both policers; it advances 1ms per
  // op, decoupled from the harness's simulated RBAC time.
  auto logical_now = std::make_shared<std::atomic<int64_t>>(0);
  const Policer::Quota quota{/*rate_per_s=*/50.0, /*burst=*/2};

  ServiceConfig config;
  config.num_shards = 3;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 4096;
  config.quota_rate_per_s = quota.rate_per_s;
  config.quota_burst = quota.burst;
  config.quota_enforcement = QuotaEnforcement::kAlways;
  config.quota_clock = [logical_now] { return logical_now->load(); };
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(policy).ok());
  ServiceAdapter policed{service};

  SimulatedClock oracle_clock(testutil::Noon());
  DirectEnforcer oracle(&oracle_clock);
  ASSERT_TRUE(oracle.LoadPolicy(policy).ok());
  Policer::Options oracle_options;
  oracle_options.default_quota = quota;
  oracle_options.clock = [logical_now] { return logical_now->load(); };
  Policer oracle_policer(std::move(oracle_options));

  constexpr const char* kOverQuotaReason = "overloaded: over quota";
  uint64_t refused = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    logical_now->fetch_add(1'000'000);  // 1ms per op.
    const Request& request = requests[i];
    if (request.kind != RequestKind::kCheckAccess) {
      // Admin traffic is never policed; both sides mutate in lockstep.
      const Decision got = ApplyRequest(policed, request);
      const Decision want = ApplyRequest(oracle, request);
      ASSERT_EQ(got.allowed, want.allowed)
          << "--seed=" << seed << " request #" << i << " "
          << RequestKindToString(request.kind) << " user=" << request.user
          << "\n  policed service: " << got.reason
          << "\n  oracle: " << want.reason;
      continue;
    }
    // The service keys on the session (no user on the wire request); the
    // oracle policer must see the identical principal and clock.
    const bool refuse = oracle_policer.Admit(request.session) ==
                        Policer::Verdict::kOverQuota;
    const Decision got = ApplyRequest(policed, request);
    Decision want;
    if (refuse) {
      ++refused;
      ASSERT_FALSE(got.allowed) << "--seed=" << seed << " request #" << i;
      ASSERT_EQ(got.reason, kOverQuotaReason)
          << "--seed=" << seed << " request #" << i
          << " session=" << request.session;
    } else {
      want = ApplyRequest(oracle, request);
      ASSERT_EQ(got.allowed, want.allowed)
          << "--seed=" << seed << " request #" << i
          << " session=" << request.session << " op=" << request.operation
          << " obj=" << request.object
          << "\n  policed service: rule=" << got.rule
          << " reason=" << got.reason << "\n  oracle: rule=" << want.rule
          << " reason=" << want.reason;
    }
    // Replay at the same instant: the token spent (or verdict issued)
    // above makes the replay's own admission verdict — still in lockstep.
    const bool replay_refuse = oracle_policer.Admit(request.session) ==
                               Policer::Verdict::kOverQuota;
    const Decision again = ApplyRequest(policed, request);
    if (replay_refuse) {
      ++refused;
      ASSERT_FALSE(again.allowed)
          << "--seed=" << seed << " replay of request #" << i;
      ASSERT_EQ(again.reason, kOverQuotaReason)
          << "--seed=" << seed << " replay of request #" << i;
    } else {
      // An admitted replay implies the original was admitted too (a
      // refusal never refills the bucket), so `want` is populated.
      ASSERT_FALSE(refuse);
      ASSERT_EQ(again.allowed, want.allowed)
          << "--seed=" << seed << " replay of request #" << i;
    }
  }

  // The arm only proves something if both verdict classes occurred.
  const ServiceStats stats = service.Stats();
  EXPECT_GT(stats.policer_admitted, 0u) << "--seed=" << seed;
  EXPECT_GT(stats.policer_over_quota, 0u) << "--seed=" << seed;
  EXPECT_EQ(stats.policer_refused, refused) << "--seed=" << seed;
  EXPECT_EQ(stats.policer_over_quota, oracle_policer.over_quota_verdicts())
      << "--seed=" << seed;
  EXPECT_EQ(stats.policer_admitted, oracle_policer.admitted())
      << "--seed=" << seed;
}

/// Same lockstep over the synchronous single-shard mode, where the cache
/// shares the caller's thread — a cheaper second arm with its own seed.
TEST(CachedServiceDifferentialTest, SynchronousCachedServiceMatchesOracle) {
  const uint64_t seed = g_harness_seed * 0xd1342543de82ef95ull + 1;
  std::cerr << "[harness] synchronous-arm seed derived from --seed="
            << g_harness_seed << "\n";

  const Policy policy = GeneratePolicy(CachedHarnessPolicyParams(seed));
  ASSERT_TRUE(policy.Validate().ok());

  RequestGenParams request_params;
  request_params.seed = seed;
  request_params.num_requests = 3000;
  request_params.max_advance = 2 * kHour + 1;
  const std::vector<Request> requests =
      RequestGenerator(policy, request_params).Generate();

  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = true;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 1024;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(policy).ok());
  ServiceAdapter cached{service};

  SimulatedClock oracle_clock(testutil::Noon());
  DirectEnforcer oracle(&oracle_clock);
  ASSERT_TRUE(oracle.LoadPolicy(policy).ok());

  for (size_t i = 0; i < requests.size(); ++i) {
    const Decision got = ApplyRequest(cached, requests[i]);
    const Decision want = ApplyRequest(oracle, requests[i]);
    ASSERT_EQ(got.allowed, want.allowed)
        << "--seed=" << g_harness_seed << " request #" << i << " "
        << RequestKindToString(requests[i].kind)
        << "\n  cached service: " << got.rule << " / " << got.reason
        << "\n  oracle: " << want.rule << " / " << want.reason;
    if (!want.allowed && requests[i].kind == RequestKind::kCheckAccess) {
      ASSERT_EQ(got.reason, want.reason) << "request #" << i;
    }
  }
  EXPECT_GT(service.Stats().cache_hits + service.Stats().cache_misses, 0u);
}

// ================================================================
// Satellite: update-churn lockstep under pauseless swaps (PR 9)
// ================================================================

/// 12k-op lockstep while a second thread streams ApplyPolicyUpdates
/// (permission / assignment / DSD toggles from scenario_gen's mutation
/// helpers) through the pauseless swap path. A shared step mutex makes
/// each (service op, oracle op) pair and each (service update, oracle
/// update) pair atomic — those are the linearization points; between any
/// two of them the two systems must agree exactly, so a swap that leaked a
/// half-applied generation into a verdict shows up as a divergence.
TEST(CachedServiceDifferentialTest, UpdateChurnTwelveThousandOpsZeroDivergences) {
  const uint64_t seed = g_harness_seed ^ 0xc0ffee5eedull;
  std::cerr << "[harness] update-churn differential seed: --seed="
            << g_harness_seed << "\n";

  const Policy policy = GeneratePolicy(CachedHarnessPolicyParams(seed));
  ASSERT_TRUE(policy.Validate().ok());

  RequestGenParams request_params;
  request_params.seed = seed;
  request_params.num_requests = 12000;
  request_params.max_advance = 45 * kMinute + 1;
  const std::vector<Request> requests =
      RequestGenerator(policy, request_params).Generate();
  ASSERT_GE(requests.size(), 10000u);

  ServiceConfig config;
  config.num_shards = 3;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 4096;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(policy).ok());
  ServiceAdapter cached{service};

  SimulatedClock oracle_clock(testutil::Noon());
  DirectEnforcer oracle(&oracle_clock);
  ASSERT_TRUE(oracle.LoadPolicy(policy).ok());

  // The oracle is single-threaded and the lockstep comparison needs the
  // pair (service call, oracle call) to be one atomic step; everything on
  // both systems happens under step_mu.
  std::mutex step_mu;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> updates_applied{0};
  std::atomic<uint64_t> updates_rejected{0};
  std::atomic<bool> churn_ok{true};
  std::string churn_error;

  std::thread churn([&] {
    // The churn thread's own view of the evolving policy — advanced only
    // on updates BOTH systems accepted, so it always matches what the two
    // systems serve at the next linearization point.
    Policy current = policy;
    uint64_t salt = seed;
    int kind = 0;
    while (!stop.load(std::memory_order_acquire)) {
      ++salt;
      Result<Policy> mutated = Status::NotFound("unset");
      switch (kind) {
        case 0:
          mutated = WithToggledPermission(current, salt);
          break;
        case 1:
          mutated = WithToggledAssignment(current, salt);
          break;
        default:
          mutated = WithToggledDsd(current, "churn-dsd");
          break;
      }
      kind = (kind + 1) % 3;
      if (!mutated.ok()) continue;  // No candidate for this kind; rotate.
      {
        std::lock_guard<std::mutex> lock(step_mu);
        const auto service_update = service.ApplyPolicyUpdate(*mutated);
        const Status oracle_update = oracle.ApplyPolicyUpdate(*mutated);
        if (service_update.ok() != oracle_update.ok()) {
          churn_ok.store(false, std::memory_order_release);
          churn_error = "service: " + std::string(
              service_update.status().message()) + " / oracle: " +
              std::string(oracle_update.message());
          return;
        }
        if (service_update.ok()) {
          current = std::move(*mutated);
          updates_applied.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Commits are best-effort on runtime conflicts (the entry is
          // skipped, not the update), so a rejection here is a static
          // validity refusal at prepare — both sides must refuse
          // identically and the churn moves on from the same base.
          updates_rejected.fetch_add(1, std::memory_order_relaxed);
        }
      }
      // Unlocked gap: decision traffic interleaves with the next swap.
      std::this_thread::yield();
    }
  });

  for (size_t i = 0; i < requests.size() && churn_ok; ++i) {
    const Request& request = requests[i];
    std::lock_guard<std::mutex> lock(step_mu);
    const Decision got = ApplyRequest(cached, request);
    const Decision want = ApplyRequest(oracle, request);
    ASSERT_EQ(got.allowed, want.allowed)
        << "--seed=" << g_harness_seed << " request #" << i << " "
        << RequestKindToString(request.kind) << " user=" << request.user
        << " session=" << request.session << " role=" << request.role
        << " op=" << request.operation << " obj=" << request.object
        << " after " << updates_applied.load() << " swaps"
        << "\n  service: rule=" << got.rule << " reason=" << got.reason
        << "\n  oracle: rule=" << want.rule << " reason=" << want.reason;
    if (request.kind == RequestKind::kCheckAccess && !want.allowed) {
      ASSERT_EQ(got.reason, want.reason)
          << "--seed=" << g_harness_seed << " request #" << i;
    }
  }

  stop.store(true, std::memory_order_release);
  churn.join();
  ASSERT_TRUE(churn_ok.load()) << "churned update diverged: " << churn_error
                               << " --seed=" << g_harness_seed;
  // The arm is vacuous unless a meaningful stream of swaps actually landed
  // mid-run; with the yield cadence this is reliably in the hundreds.
  EXPECT_GE(updates_applied.load(), 16u) << "--seed=" << g_harness_seed;
  // The swap telemetry reconciles exactly with what the churn observed:
  // every accepted update was a pauseless commit, every rejection was
  // counted as a failure (and left both systems serving the old base).
  EXPECT_EQ(service.Stats().policy_swaps, updates_applied.load());
  EXPECT_EQ(service.Stats().policy_swap_failures, updates_rejected.load());
}

}  // namespace
}  // namespace sentinel

/// Custom main instead of gtest_main: accepts --seed=N (or "--seed N")
/// to replay or randomize the cached-service harness. The default is a
/// fixed seed so a bare ctest run is deterministic; scripts/check.sh's
/// `differential` stage passes a random seed on developer machines (and
/// pins one in CI). The active seed is printed in every failure message.
int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  uint64_t seed = 20260806;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--seed=", 0) == 0) {
      seed = std::strtoull(arg.c_str() + 7, nullptr, 10);
    } else if (arg == "--seed" && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (seed == 0) seed = std::random_device{}();
  if (seed == 0) seed = 0x5eed;  // random_device may legally return 0.
  sentinel::g_harness_seed = seed;
  return RUN_ALL_TESTS();
}
