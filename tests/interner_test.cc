#include "common/interner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "common/value.h"

namespace sentinel {
namespace {

// ------------------------------------------------------------ SymbolTable

TEST(SymbolTableTest, InternAssignsDenseIdsInOrder) {
  SymbolTable t;
  EXPECT_EQ(t.Intern("alice").id(), 0u);
  EXPECT_EQ(t.Intern("bob").id(), 1u);
  EXPECT_EQ(t.Intern("carol").id(), 2u);
  EXPECT_EQ(t.size(), 3u);
}

TEST(SymbolTableTest, ReinternReturnsSameSymbol) {
  SymbolTable t;
  const Symbol a = t.Intern("alice");
  const Symbol b = t.Intern("bob");
  EXPECT_EQ(t.Intern("alice"), a);
  EXPECT_EQ(t.Intern("bob"), b);
  EXPECT_EQ(t.size(), 2u);
}

TEST(SymbolTableTest, FindDoesNotIntern) {
  SymbolTable t;
  EXPECT_FALSE(t.Find("ghost").valid());
  EXPECT_EQ(t.size(), 0u);
  const Symbol s = t.Intern("real");
  EXPECT_EQ(t.Find("real"), s);
}

TEST(SymbolTableTest, NameOfRoundTripsAndHandlesInvalid) {
  SymbolTable t;
  const Symbol s = t.Intern("role:doctor");
  EXPECT_EQ(t.NameOf(s), "role:doctor");
  EXPECT_EQ(t.NameOf(Symbol()), "");
  EXPECT_EQ(t.NameOf(Symbol(999)), "");
}

TEST(SymbolTableTest, IdsAndNamesStableAcrossGrowth) {
  SymbolTable t;
  // Enough insertions to force several rehashes of the index.
  std::vector<Symbol> syms;
  for (int i = 0; i < 1000; ++i) {
    syms.push_back(t.Intern("name" + std::to_string(i)));
  }
  const std::string* early = &t.NameOf(syms[0]);
  for (int i = 0; i < 1000; ++i) {
    const std::string name = "name" + std::to_string(i);
    EXPECT_EQ(syms[i].id(), static_cast<uint32_t>(i));
    EXPECT_EQ(t.Find(name), syms[i]);
    EXPECT_EQ(t.NameOf(syms[i]), name);
  }
  // NameOf references stay valid for the table's lifetime.
  EXPECT_EQ(early, &t.NameOf(syms[0]));
}

TEST(SymbolTableTest, EmptyStringIsAValidDistinctSymbol) {
  SymbolTable t;
  const Symbol empty = t.Intern("");
  EXPECT_TRUE(empty.valid());
  EXPECT_EQ(t.NameOf(empty), "");
  EXPECT_EQ(t.Intern(""), empty);
}

/// Zero-hop contract: Find and NameOf run from caller threads while the
/// single shard-thread writer interns new names and grows the index.
/// Readers must only ever see fully-published symbols — a name that was
/// interned before the reader started can never go missing, and any Symbol
/// Find returns must round-trip through NameOf.
TEST(SymbolTableTest, ConcurrentFindsStayCoherentDuringInterning) {
  SymbolTable t;
  constexpr int kSeeded = 256;
  constexpr int kExtra = 4096;  // Forces index growth mid-flight.
  for (int i = 0; i < kSeeded; ++i) {
    t.Intern("seed" + std::to_string(i));
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> violations{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&t, &stop, &violations] {
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const std::string seeded = "seed" + std::to_string(i % kSeeded);
        const Symbol s = t.Find(seeded);
        if (!s.valid() || t.NameOf(s) != seeded) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        // In-flight names: absent or fully published, never half-built.
        const std::string racing = "extra" + std::to_string(i % kExtra);
        const Symbol e = t.Find(racing);
        if (e.valid() && t.NameOf(e) != racing) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
    });
  }

  for (int i = 0; i < kExtra; ++i) {
    t.Intern("extra" + std::to_string(i));
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(violations.load(), 0u);
  EXPECT_EQ(t.size(), static_cast<size_t>(kSeeded + kExtra));
  for (int i = 0; i < kExtra; ++i) {
    const std::string name = "extra" + std::to_string(i);
    EXPECT_EQ(t.NameOf(t.Find(name)), name);
  }
}

// ----------------------------------------------------------- FlatParamMap

Symbol Sym(uint32_t id) { return Symbol(id); }

TEST(FlatParamMapTest, SetKeepsEntriesSortedRegardlessOfInsertOrder) {
  FlatParamMap m;
  m.Set(Sym(5), Value(5));
  m.Set(Sym(1), Value(1));
  m.Set(Sym(3), Value(3));
  ASSERT_EQ(m.size(), 3u);
  uint32_t prev = 0;
  for (const auto& e : m) {
    EXPECT_GE(e.key.id(), prev);
    prev = e.key.id();
    EXPECT_EQ(e.value, Value(static_cast<int64_t>(e.key.id())));
  }
}

TEST(FlatParamMapTest, LatestWriteWins) {
  FlatParamMap m;
  m.Set(Sym(2), Value("old"));
  m.Set(Sym(2), Value("new"));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.Get(Sym(2)), Value("new"));
}

TEST(FlatParamMapTest, FindAndGetMissingKey) {
  FlatParamMap m;
  m.Set(Sym(1), Value(1));
  EXPECT_EQ(m.Find(Sym(9)), nullptr);
  EXPECT_TRUE(m.Get(Sym(9)).is_null());
  EXPECT_FALSE(m.Contains(Sym(9)));
  EXPECT_TRUE(m.Contains(Sym(1)));
}

TEST(FlatParamMapTest, SpillsToHeapPastInlineCapacityAndStaysSorted) {
  FlatParamMap m;
  // Insert in descending order, well past kInlineCapacity (6).
  for (uint32_t i = 20; i > 0; --i) {
    m.Set(Sym(i), Value(static_cast<int64_t>(i)));
  }
  ASSERT_EQ(m.size(), 20u);
  uint32_t expect = 1;
  for (const auto& e : m) {
    EXPECT_EQ(e.key.id(), expect);
    EXPECT_EQ(e.value, Value(static_cast<int64_t>(expect)));
    ++expect;
  }
  // Lookups still work after the spill.
  EXPECT_EQ(m.Get(Sym(20)), Value(int64_t{20}));
  EXPECT_EQ(m.Get(Sym(1)), Value(int64_t{1}));
}

TEST(FlatParamMapTest, EqualityIsOrderInsensitive) {
  FlatParamMap a{{Sym(1), Value(1)}, {Sym(2), Value(2)}};
  FlatParamMap b;
  b.Set(Sym(2), Value(2));
  b.Set(Sym(1), Value(1));
  EXPECT_EQ(a, b);
  b.Set(Sym(1), Value(7));
  EXPECT_FALSE(a == b);
}

TEST(FlatParamMapTest, ContainsAllIsSubsetWithEqualValues) {
  FlatParamMap super{{Sym(1), Value(1)}, {Sym(2), Value(2)}, {Sym(3), Value(3)}};
  FlatParamMap sub{{Sym(1), Value(1)}, {Sym(3), Value(3)}};
  EXPECT_TRUE(super.ContainsAll(sub));
  EXPECT_TRUE(super.ContainsAll({}));
  sub.Set(Sym(3), Value(9));  // Wrong value.
  EXPECT_FALSE(super.ContainsAll(sub));
  FlatParamMap missing{{Sym(4), Value(4)}};
  EXPECT_FALSE(super.ContainsAll(missing));
}

TEST(FlatParamMapTest, MergeFromOverlayWins) {
  FlatParamMap base{{Sym(1), Value(1)}, {Sym(2), Value(2)}};
  FlatParamMap overlay{{Sym(2), Value(22)}, {Sym(3), Value(3)}};
  base.MergeFrom(overlay);
  EXPECT_EQ(base.size(), 3u);
  EXPECT_EQ(base.Get(Sym(1)), Value(1));
  EXPECT_EQ(base.Get(Sym(2)), Value(22));
  EXPECT_EQ(base.Get(Sym(3)), Value(3));
}

TEST(FlatParamMapTest, InternStringValuesCanonicalizesOnlyStrings) {
  SymbolTable t;
  const Symbol k1 = t.Intern("user");
  const Symbol k2 = t.Intern("count");
  FlatParamMap m{{k1, Value("bob")}, {k2, Value(7)}};
  m.InternStringValues(t);
  ASSERT_TRUE(m.Get(k1).is_symbol());
  EXPECT_EQ(t.NameOf(m.Get(k1).AsSymbol()), "bob");
  EXPECT_EQ(m.Get(k2), Value(7));  // Non-strings untouched.
}

TEST(FlatParamMapTest, StringKeyedAccessorsResolveThroughTable) {
  SymbolTable t;
  FlatParamMap m = InternParams(t, {{"user", Value("bob")}, {"n", Value(3)}});
  EXPECT_EQ(m.GetString(t, "user"), "bob");
  EXPECT_EQ(m.Get(t, "n"), Value(3));
  EXPECT_TRUE(m.Get(t, "missing").is_null());
  EXPECT_EQ(m.GetString(t, "never-interned-key"), "");
}

TEST(FlatParamMapTest, ToStringMatchesParamMapToStringRendering) {
  SymbolTable t;
  const ParamMap source = {
      {"b", Value("beta")}, {"a", Value(1)}, {"c", Value(true)}};
  FlatParamMap m = InternParams(t, source);
  EXPECT_EQ(m.ToString(t), ParamMapToString(source));
}

TEST(FlatParamMapTest, InternExternRoundTrip) {
  SymbolTable t;
  const ParamMap source = {
      {"user", Value("bob")}, {"x", Value(2)}, {"ok", Value(false)}};
  const FlatParamMap m = InternParams(t, source);
  EXPECT_EQ(ExternParams(t, m), source);
}

}  // namespace
}  // namespace sentinel
