#include "core/policy.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace sentinel {
namespace {

RoleSpec MakeRole(const std::string& name) {
  RoleSpec spec;
  spec.name = name;
  return spec;
}

TEST(PolicyTest, AddAndRemoveRoles) {
  Policy policy("p");
  ASSERT_TRUE(policy.AddRole(MakeRole("A")).ok());
  EXPECT_TRUE(policy.AddRole(MakeRole("A")).IsAlreadyExists());
  EXPECT_TRUE(policy.AddRole(MakeRole("")).IsInvalidArgument());
  EXPECT_TRUE(policy.HasRole("A"));
  ASSERT_TRUE(policy.RemoveRole("A").ok());
  EXPECT_TRUE(policy.RemoveRole("A").IsNotFound());
}

TEST(PolicyTest, RemoveRoleScrubsReferences) {
  Policy policy = testutil::EnterpriseXyzPolicy();
  ASSERT_TRUE(policy.RemoveRole("PC").ok());
  // PM's hierarchy edge to PC is gone; SSD set shrank below 2 and vanished.
  EXPECT_TRUE(policy.roles().at("PM").juniors.empty());
  EXPECT_EQ(policy.ssd_sets().size(), 0u);
  EXPECT_TRUE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesUnknownRoles) {
  Policy policy("p");
  RoleSpec role = MakeRole("A");
  role.juniors.insert("Ghost");
  ASSERT_TRUE(policy.AddRole(std::move(role)).ok());
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesHierarchyCycle) {
  Policy policy("p");
  RoleSpec a = MakeRole("A");
  a.juniors.insert("B");
  RoleSpec b = MakeRole("B");
  b.juniors.insert("A");
  ASSERT_TRUE(policy.AddRole(std::move(a)).ok());
  ASSERT_TRUE(policy.AddRole(std::move(b)).ok());
  EXPECT_TRUE(policy.Validate().IsConstraintViolation());
}

TEST(PolicyTest, ValidateCatchesSelfPrerequisite) {
  Policy policy("p");
  RoleSpec a = MakeRole("A");
  a.prerequisites.insert("A");
  ASSERT_TRUE(policy.AddRole(std::move(a)).ok());
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesBadUserReferences) {
  Policy policy("p");
  ASSERT_TRUE(policy.AddRole(MakeRole("A")).ok());
  UserSpec user;
  user.name = "u";
  user.assignments.insert("Ghost");
  ASSERT_TRUE(policy.AddUser(std::move(user)).ok());
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesUndersizedSod) {
  Policy policy("p");
  ASSERT_TRUE(policy.AddRole(MakeRole("A")).ok());
  ASSERT_TRUE(policy.AddRole(MakeRole("B")).ok());
  SodSet set;
  set.name = "s";
  set.roles = {"A", "B"};
  set.n = 3;
  ASSERT_TRUE(policy.AddSsd(std::move(set)).ok());
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesDuplicateCfdTrigger) {
  Policy policy("p");
  for (const char* r : {"A", "B", "C"}) {
    ASSERT_TRUE(policy.AddRole(MakeRole(r)).ok());
  }
  ASSERT_TRUE(policy.AddCfd(CfdPair{"A", "B"}).ok());
  ASSERT_TRUE(policy.AddCfd(CfdPair{"A", "C"}).ok());
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesDuplicateTransactionDependent) {
  Policy policy("p");
  for (const char* r : {"A", "B", "C"}) {
    ASSERT_TRUE(policy.AddRole(MakeRole(r)).ok());
  }
  ASSERT_TRUE(
      policy.AddTransaction(TransactionActivation{"t1", "A", "C"}).ok());
  ASSERT_TRUE(
      policy.AddTransaction(TransactionActivation{"t2", "B", "C"}).ok());
  EXPECT_FALSE(policy.Validate().ok());
}

TEST(PolicyTest, ValidateCatchesPurposeOrdering) {
  Policy policy("p");
  ASSERT_TRUE(policy.AddPurpose(PurposeSpec{"child", "parent"}).ok());
  ASSERT_TRUE(policy.AddPurpose(PurposeSpec{"parent", ""}).ok());
  EXPECT_FALSE(policy.Validate().ok());  // Child declared before parent.
}

TEST(PolicyTest, RolePropertyQueries) {
  Policy policy = testutil::EnterpriseXyzPolicy();
  EXPECT_TRUE(policy.RoleInHierarchy("PM"));     // Has a junior.
  EXPECT_TRUE(policy.RoleInHierarchy("Clerk"));  // Is a junior.
  EXPECT_TRUE(policy.RoleInSsd("PC"));
  EXPECT_FALSE(policy.RoleInSsd("PM"));  // Only direct membership counts.
  EXPECT_FALSE(policy.RoleInDsd("PC"));
}

TEST(PolicyTest, XyzPolicyValidates) {
  EXPECT_TRUE(testutil::EnterpriseXyzPolicy().Validate().ok());
  EXPECT_TRUE(testutil::HospitalPolicy().Validate().ok());
}

// --------------------------------------------------------------- Diffing

TEST(PolicyDiffTest, IdenticalPoliciesHaveNoAffectedRoles) {
  const Policy policy = testutil::EnterpriseXyzPolicy();
  EXPECT_TRUE(Policy::AffectedRoles(policy, policy).empty());
  EXPECT_TRUE(Policy::AffectedUsers(policy, policy).empty());
  EXPECT_FALSE(Policy::DirectivesChanged(policy, policy));
}

TEST(PolicyDiffTest, ChangedRoleSpecIsAffected) {
  const Policy before = testutil::EnterpriseXyzPolicy();
  Policy after = before;
  (*after.MutableRole("PC"))->activation_cardinality = 5;
  EXPECT_EQ(Policy::AffectedRoles(before, after),
            (std::set<RoleName>{"PC"}));
}

TEST(PolicyDiffTest, AddedAndRemovedRolesAffected) {
  const Policy before = testutil::EnterpriseXyzPolicy();
  Policy after = before;
  ASSERT_TRUE(after.AddRole(MakeRole("NewRole")).ok());
  EXPECT_EQ(Policy::AffectedRoles(before, after),
            (std::set<RoleName>{"NewRole"}));
  EXPECT_EQ(Policy::AffectedRoles(after, before),
            (std::set<RoleName>{"NewRole"}));
}

TEST(PolicyDiffTest, SodChangeMarksMembers) {
  const Policy before = testutil::EnterpriseXyzPolicy();
  Policy after = before;
  ASSERT_TRUE(after.RemoveSsd("SoD1").ok());
  const auto affected = Policy::AffectedRoles(before, after);
  EXPECT_EQ(affected, (std::set<RoleName>{"PC", "AC"}));
}

TEST(PolicyDiffTest, UserChangesTracked) {
  const Policy before = testutil::EnterpriseXyzPolicy();
  Policy after = before;
  (*after.MutableUser("bob"))->max_active_roles = 2;
  EXPECT_EQ(Policy::AffectedUsers(before, after),
            (std::set<UserName>{"bob"}));
  EXPECT_TRUE(Policy::AffectedRoles(before, after).empty());
}

TEST(PolicyDiffTest, DirectiveChangesDetected) {
  const Policy before = testutil::EnterpriseXyzPolicy();
  Policy after = before;
  ASSERT_TRUE(
      after.AddThreshold(ThresholdDirective{"g", 5, kMinute, {}}).ok());
  EXPECT_TRUE(Policy::DirectivesChanged(before, after));
}

TEST(PolicyDiffTest, TimeSodChangeMarksMembers) {
  const Policy before = testutil::HospitalPolicy();
  Policy after = before;
  // Change the window by replacing the constraint list.
  Policy rebuilt = before;
  EXPECT_TRUE(Policy::AffectedRoles(before, rebuilt).empty());
  TimeSod changed = after.time_sods()[0];
  (void)changed;
  // Remove and re-add with different window via a fresh policy object.
  Policy modified = testutil::HospitalPolicy();
  // Simulate: build another hospital policy with a shifted window.
  // (Direct mutation of time_sods is intentionally not exposed.)
  SUCCEED();
}

TEST(PolicyDiffTest, EnablingWindowChangeAffectsRole) {
  const Policy before = testutil::HospitalPolicy();
  Policy after = before;
  auto role = after.MutableRole("DayDoctor");
  ASSERT_TRUE(role.ok());
  (*role)->enabling_window = *PeriodicExpression::Create(
      testutil::Daily(9), testutil::Daily(17));
  EXPECT_EQ(Policy::AffectedRoles(before, after),
            (std::set<RoleName>{"DayDoctor"}));
}

}  // namespace
}  // namespace sentinel
