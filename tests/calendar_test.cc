#include "common/calendar.h"

#include <gtest/gtest.h>

#include "common/clock.h"
#include "common/rng.h"

namespace sentinel {
namespace {

TEST(CalendarTest, EpochIsJan1st1970) {
  const CivilTime c = ToCivil(0);
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
}

TEST(CalendarTest, KnownInstant) {
  // 2026-07-06 12:34:56 UTC.
  const Time t = MakeTime(2026, 7, 6, 12, 34, 56);
  const CivilTime c = ToCivil(t);
  EXPECT_EQ(c.year, 2026);
  EXPECT_EQ(c.month, 7);
  EXPECT_EQ(c.day, 6);
  EXPECT_EQ(c.hour, 12);
  EXPECT_EQ(c.minute, 34);
  EXPECT_EQ(c.second, 56);
  EXPECT_EQ(c.microsecond, 0);
}

TEST(CalendarTest, DayOfWeek) {
  EXPECT_EQ(DayOfWeek(0), 4);  // 1970-01-01 was a Thursday.
  EXPECT_EQ(DayOfWeek(MakeTime(2026, 7, 6)), 1);   // Monday.
  EXPECT_EQ(DayOfWeek(MakeTime(2026, 7, 12)), 0);  // Sunday.
}

TEST(CalendarTest, LeapYears) {
  EXPECT_TRUE(IsLeapYear(2024));
  EXPECT_FALSE(IsLeapYear(2026));
  EXPECT_FALSE(IsLeapYear(1900));  // Century, not divisible by 400.
  EXPECT_TRUE(IsLeapYear(2000));
}

TEST(CalendarTest, DaysInMonth) {
  EXPECT_EQ(DaysInMonth(2024, 2), 29);
  EXPECT_EQ(DaysInMonth(2026, 2), 28);
  EXPECT_EQ(DaysInMonth(2026, 4), 30);
  EXPECT_EQ(DaysInMonth(2026, 12), 31);
  EXPECT_EQ(DaysInMonth(2026, 13), 0);
}

TEST(CalendarTest, FromCivilNormalizesOverflow) {
  // Hour 24 rolls into the next day.
  CivilTime c;
  c.year = 2026;
  c.month = 7;
  c.day = 6;
  c.hour = 24;
  EXPECT_EQ(FromCivil(c), MakeTime(2026, 7, 7));
  // Month 13 rolls into the next year.
  CivilTime m;
  m.year = 2026;
  m.month = 13;
  m.day = 1;
  EXPECT_EQ(FromCivil(m), MakeTime(2027, 1, 1));
}

TEST(CalendarTest, NegativeTimesBeforeEpoch) {
  const CivilTime c = ToCivil(-kDay);
  EXPECT_EQ(c.year, 1969);
  EXPECT_EQ(c.month, 12);
  EXPECT_EQ(c.day, 31);
}

TEST(CalendarTest, FormatTime) {
  EXPECT_EQ(FormatTime(MakeTime(2026, 7, 6, 9, 5, 3)),
            "2026-07-06 09:05:03");
  EXPECT_EQ(FormatTime(MakeTime(2026, 1, 1, 0, 0, 0, 250)),
            "2026-01-01 00:00:00.000250");
}

// Property: ToCivil and FromCivil are exact inverses over a wide random
// range of instants.
TEST(CalendarPropertyTest, RoundTripRandomInstants) {
  Rng rng(20260706);
  for (int i = 0; i < 20000; ++i) {
    // ~1900..2150 range in microseconds.
    const Time t =
        rng.NextInt(-2208988800LL, 5680281600LL) * kSecond +
        rng.NextInt(0, kSecond - 1);
    const CivilTime c = ToCivil(t);
    EXPECT_EQ(FromCivil(c), t) << FormatTime(t);
    EXPECT_GE(c.month, 1);
    EXPECT_LE(c.month, 12);
    EXPECT_GE(c.day, 1);
    EXPECT_LE(c.day, DaysInMonth(c.year, c.month));
    EXPECT_GE(c.hour, 0);
    EXPECT_LE(c.hour, 23);
  }
}

TEST(SystemClockTest, ReturnsPlausibleWallTime) {
  // Wall-clock smoke test: the SystemClock reads a monotone-ish, current
  // real time (the library is otherwise exercised under simulated time).
  SystemClock clock;
  const Time first = clock.Now();
  EXPECT_GT(first, MakeTime(2024, 1, 1));   // After the library existed.
  EXPECT_LT(first, MakeTime(2100, 1, 1));   // Before the heat death.
  const Time second = clock.Now();
  EXPECT_GE(second, first);
}

// Property: adding one civil day equals adding kDay microseconds.
TEST(CalendarPropertyTest, DayArithmeticConsistent) {
  Rng rng(99);
  for (int i = 0; i < 2000; ++i) {
    const Time t = rng.NextInt(0, 4102444800LL) * kSecond;
    CivilTime c = ToCivil(t);
    c.day += 1;
    EXPECT_EQ(FromCivil(c), t + kDay);
  }
}

}  // namespace
}  // namespace sentinel
