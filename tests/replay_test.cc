#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "audit/replay.h"
#include "common/clock.h"
#include "core/engine.h"
#include "service/authorization_service.h"
#include "workload/scenario_gen.h"

namespace sentinel {
namespace audit {
namespace {

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "sentinelpp_" + name;
}

/// Drives one generated workload request into the service (the soak
/// driver's dispatch, test-sized).
void Apply(AuthorizationService& service, const Request& request) {
  switch (request.kind) {
    case RequestKind::kCreateSession:
      (void)service.CreateSession(request.user, request.session);
      break;
    case RequestKind::kDeleteSession:
      (void)service.DeleteSession(request.session);
      break;
    case RequestKind::kAddActiveRole:
      (void)service.AddActiveRole(request.user, request.session,
                                  request.role);
      break;
    case RequestKind::kDropActiveRole:
      (void)service.DropActiveRole(request.user, request.session,
                                   request.role);
      break;
    case RequestKind::kCheckAccess: {
      AccessRequest access;
      access.session = request.session;
      access.operation = request.operation;
      access.object = request.object;
      access.purpose = request.purpose;
      (void)service.CheckAccess(access);
      break;
    }
    case RequestKind::kAssignUser:
      (void)service.AssignUser(request.user, request.role);
      break;
    case RequestKind::kDeassignUser:
      (void)service.DeassignUser(request.user, request.role);
      break;
    case RequestKind::kEnableRole:
      (void)service.EnableRole(request.role);
      break;
    case RequestKind::kDisableRole:
      (void)service.DisableRole(request.role);
      break;
    case RequestKind::kAdvanceTime:
      (void)service.AdvanceBy(request.advance);
      break;
    case RequestKind::kSetContext:
      service.SetContext(request.context_key, request.context_value);
      break;
  }
}

/// Captures an audit stream by running `scenario` through a synchronous
/// audited service; returns the parsed records.
std::vector<AuditRecord> CaptureScenario(const Scenario& scenario,
                                         const std::string& path) {
  std::remove(path.c_str());
  ServiceConfig config;
  config.synchronous = true;
  config.num_shards = 1;
  config.start_time = MakeTime(2026, 7, 6, 9, 0, 0);
  config.audit_path = path;
  AuthorizationService service(config);
  EXPECT_TRUE(service.LoadPolicy(scenario.policy).ok());
  for (const Request& request : scenario.requests) Apply(service, request);
  service.Shutdown();
  EXPECT_EQ(service.audit_exporter()->counters().drops, 0u);

  uint64_t parse_errors = 0;
  auto records = LoadCaptureFile(path, &parse_errors);
  EXPECT_TRUE(records.ok());
  EXPECT_EQ(parse_errors, 0u);
  return records.ok() ? *records : std::vector<AuditRecord>{};
}

// ------------------------------------------------------------- determinism

TEST(ReplayTest, UnchangedPolicyReplaysWithZeroDiffs) {
  ScenarioParams params = SmokeScenarioParams();
  params.num_users = 60;
  params.num_requests = 3000;
  const Scenario scenario = GenerateScenario(params);
  const auto records =
      CaptureScenario(scenario, TempPath("replay_zero.jsonl"));
  ASSERT_GT(records.size(), 2000u);

  auto report = ReplayCapture(records, scenario.policy);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GT(report->replayed, 2000u);
  EXPECT_EQ(report->flips(), 0u);
  EXPECT_EQ(report->outcome_changes, 0u);
  EXPECT_TRUE(report->diffs.empty());

  // Replay is itself deterministic: a second pass agrees exactly.
  auto again = ReplayCapture(records, scenario.policy);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->replayed, report->replayed);
  EXPECT_EQ(again->skipped, report->skipped);
  EXPECT_EQ(again->flips(), 0u);
}

// ------------------------------------------------------------ verdict flips

Policy FlipBasePolicy() {
  Policy policy("flip-base");
  RoleSpec a;
  a.name = "A";
  a.permissions.insert(Permission{"read", "doc"});
  (void)policy.AddRole(std::move(a));
  RoleSpec b;
  b.name = "B";
  b.permissions.insert(Permission{"write", "doc"});
  (void)policy.AddRole(std::move(b));
  UserSpec alice;
  alice.name = "alice";
  alice.assignments = {"A", "B"};
  (void)policy.AddUser(std::move(alice));
  return policy;
}

/// Runs the canonical four-step capture (session, activate A, activate B,
/// write doc) against `policy` on a bare engine and drains its audit trail.
std::vector<AuditRecord> CaptureFlipSequence(const Policy& policy) {
  SimulatedClock clock;
  AuthorizationEngine engine(&clock);
  EXPECT_TRUE(engine.LoadPolicy(policy).ok());
  (void)engine.CreateSession("alice", "s1");
  (void)engine.AddActiveRole("alice", "s1", "A");
  (void)engine.AddActiveRole("alice", "s1", "B");
  (void)engine.CheckAccess("s1", "write", "doc", "");
  std::vector<AuditRecord> records;
  engine.DrainDecisionLog([&records](const DecisionRecord& record) {
    records.push_back(FromDecisionRecord(record, 0, 1));
  });
  EXPECT_EQ(records.size(), 4u);
  return records;
}

TEST(ReplayTest, AddedDsdEdgeFlipsExactlyTheDependentVerdicts) {
  const Policy base = FlipBasePolicy();
  auto mutated = WithAddedDsdEdge(base, "DSD_SHADOW");
  ASSERT_TRUE(mutated.ok()) << mutated.status().message();
  ASSERT_EQ(mutated->dsd_sets().count("DSD_SHADOW"), 1u);

  const auto records = CaptureFlipSequence(base);
  auto report = ReplayCapture(records, *mutated);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report->replayed, 4u);
  // Exactly the DSD-dependent verdicts flip: activating B on top of A, and
  // the write that only B granted. Nothing else moves.
  EXPECT_EQ(report->allow_to_deny, 2u);
  EXPECT_EQ(report->deny_to_allow, 0u);
  ASSERT_EQ(report->diffs.size(), 2u);
  EXPECT_EQ(report->diffs[0].recorded.kind, "rbac.addActiveRole");
  EXPECT_EQ(report->diffs[0].recorded.role, "B");
  EXPECT_FALSE(report->diffs[0].new_rule.empty());
  EXPECT_EQ(report->diffs[1].recorded.kind, "rbac.checkAccess");
  EXPECT_EQ(report->diffs[1].recorded.op, "write");
  uint64_t attributed = 0;
  for (const auto& [rule, count] : report->flips_by_rule) attributed += count;
  EXPECT_EQ(attributed, 2u);
}

TEST(ReplayTest, RemovedDsdEdgeFlipsTheOtherWay) {
  const Policy base = FlipBasePolicy();
  auto mutated = WithAddedDsdEdge(base, "DSD_SHADOW");
  ASSERT_TRUE(mutated.ok());

  // Capture under the constrained policy, replay against the relaxed one.
  const auto records = CaptureFlipSequence(*mutated);
  auto report = ReplayCapture(records, base);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->allow_to_deny, 0u);
  EXPECT_EQ(report->deny_to_allow, 2u);
}

// ---------------------------------------------------- pauseless swap tails

// A capture taken across mid-run pauseless policy swaps stays replayable:
// each committed swap drops a `service.swap` marker into the stream, and
// the segment after the last marker — decided entirely under the final
// generation — replays against the final policy with zero diffs. The tail
// must be self-contained (replay starts each shard from a fresh engine, so
// head-era sessions and runtime assignments do not exist), hence the
// dedicated epilogue user/role untouched by the generated soak.
TEST(ReplayTest, TailAfterPauselessSwapsReplaysFinalPolicyWithZeroDiffs) {
  ScenarioParams params = SmokeScenarioParams();
  params.num_users = 60;
  params.num_requests = 3000;
  const Scenario scenario = GenerateScenario(params);
  Policy base = scenario.policy;
  RoleSpec tail_reader;
  tail_reader.name = "tail_reader";
  tail_reader.permissions.insert(Permission{"read", "tape"});
  ASSERT_TRUE(base.AddRole(std::move(tail_reader)).ok());
  UserSpec tailor;
  tailor.name = "tailor";
  tailor.assignments.insert("tail_reader");
  ASSERT_TRUE(base.AddUser(std::move(tailor)).ok());
  auto mutated = WithToggledPermission(base, 0);
  ASSERT_TRUE(mutated.ok()) << mutated.status().message();

  const std::string path = TempPath("replay_swap_tail.jsonl");
  std::remove(path.c_str());
  ServiceConfig config;
  config.synchronous = true;
  config.num_shards = 1;
  config.start_time = MakeTime(2026, 7, 6, 9, 0, 0);
  config.audit_path = path;
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(base).ok());
  // Two pauseless swaps land mid-soak, a third installs the final policy
  // right before the epilogue — the capture tail runs entirely under it.
  size_t applied = 0;
  for (const Request& request : scenario.requests) {
    Apply(service, request);
    ++applied;
    if (applied == 1000) {
      ASSERT_TRUE(service.ApplyPolicyUpdate(*mutated).ok());
    } else if (applied == 2000) {
      ASSERT_TRUE(service.ApplyPolicyUpdate(base).ok());
    }
  }
  ASSERT_TRUE(service.ApplyPolicyUpdate(*mutated).ok());
  ASSERT_TRUE(service.CreateSession("tailor", "tail_s1").ok());
  ASSERT_TRUE(service.AddActiveRole("tailor", "tail_s1", "tail_reader").ok());
  for (int i = 0; i < 64; ++i) {
    AccessRequest allow;
    allow.session = "tail_s1";
    allow.operation = "read";
    allow.object = "tape";
    EXPECT_TRUE(service.CheckAccess(allow).allowed);
    AccessRequest deny;
    deny.session = "tail_s1";
    deny.operation = "write";
    deny.object = "tape";
    EXPECT_FALSE(service.CheckAccess(deny).allowed);
  }
  service.Shutdown();
  EXPECT_EQ(service.audit_exporter()->counters().drops, 0u);

  uint64_t parse_errors = 0;
  auto records = LoadCaptureFile(path, &parse_errors);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(parse_errors, 0u);

  size_t last_marker = records->size();
  size_t markers = 0;
  for (size_t i = 0; i < records->size(); ++i) {
    if ((*records)[i].kind == "service.swap") {
      last_marker = i;
      ++markers;
    }
  }
  ASSERT_EQ(markers, 3u);
  ASSERT_LT(last_marker + 1, records->size());
  const std::vector<AuditRecord> tail(records->begin() + last_marker + 1,
                                      records->end());

  auto report = ReplayCapture(tail, *mutated);
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_GE(report->replayed, 130u);  // 2 session ops + 128 checks.
  EXPECT_EQ(report->flips(), 0u) << ReportToText(*report);
  EXPECT_EQ(report->outcome_changes, 0u) << ReportToText(*report);

  // And the cross-check is not vacuous: replaying the same tail against a
  // policy whose tail_reader lost `read tape` flips exactly the 64
  // epilogue allows — the zero above is the swap holding, not the harness
  // ignoring the segment.
  Policy severed = scenario.policy;
  RoleSpec blind;
  blind.name = "tail_reader";
  blind.permissions.insert(Permission{"read", "tome"});
  ASSERT_TRUE(severed.AddRole(std::move(blind)).ok());
  UserSpec tailor_again;
  tailor_again.name = "tailor";
  tailor_again.assignments.insert("tail_reader");
  ASSERT_TRUE(severed.AddUser(std::move(tailor_again)).ok());
  auto report_severed = ReplayCapture(tail, severed);
  ASSERT_TRUE(report_severed.ok());
  EXPECT_EQ(report_severed->allow_to_deny, 64u) << ReportToText(*report_severed);
  EXPECT_EQ(report_severed->deny_to_allow, 0u);
}

// ---------------------------------------------------------------- skipping

TEST(ReplayTest, SkipsServiceMarkersAndUnknownKinds) {
  std::vector<AuditRecord> records;
  AuditRecord marker;
  marker.seq = 0;
  marker.kind = "service.fastpath";
  marker.allowed = true;
  records.push_back(marker);
  AuditRecord future;
  future.seq = 5;
  future.kind = "rbac.someFutureVerb";
  records.push_back(future);

  auto report = ReplayCapture(records, FlipBasePolicy());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->replayed, 0u);
  EXPECT_EQ(report->skipped, 2u);
  EXPECT_EQ(report->flips(), 0u);
}

TEST(ReplayTest, RejectsInvalidCandidatePolicy) {
  Policy broken("broken");
  UserSpec ghost;
  ghost.name = "ghost";
  ghost.assignments.insert("no-such-role");
  (void)broken.AddUser(std::move(ghost));
  auto report = ReplayCapture({}, broken);
  EXPECT_FALSE(report.ok());
}

// -------------------------------------------------------------- time warp

TEST(ReplayTest, TimeWarpReproducesDurationExpiry) {
  Policy policy("timed");
  RoleSpec a;
  a.name = "A";
  a.permissions.insert(Permission{"read", "doc"});
  a.max_activation = 10 * kMinute;
  (void)policy.AddRole(std::move(a));
  UserSpec alice;
  alice.name = "alice";
  alice.assignments.insert("A");
  (void)policy.AddUser(std::move(alice));

  SimulatedClock clock;
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(policy).ok());
  (void)engine.CreateSession("alice", "s1");
  (void)engine.AddActiveRole("alice", "s1", "A");
  EXPECT_TRUE(engine.CheckAccess("s1", "read", "doc", "").allowed);
  engine.AdvanceTo(engine.Now() + 20 * kMinute);  // Past the bound.
  EXPECT_FALSE(engine.CheckAccess("s1", "read", "doc", "").allowed);
  std::vector<AuditRecord> records;
  engine.DrainDecisionLog([&records](const DecisionRecord& record) {
    records.push_back(FromDecisionRecord(record, 0, 1));
  });

  // Replaying against the same policy reproduces the expiry-driven denial
  // only if the replay engine's clock is warped between records.
  auto report = ReplayCapture(records, policy);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->replayed, 0u);
  EXPECT_EQ(report->flips(), 0u) << ReportToText(*report);
  EXPECT_EQ(report->outcome_changes, 0u) << ReportToText(*report);
}

// ------------------------------------------------------- loading & reports

TEST(ReplayTest, LoadCaptureCountsParseErrors) {
  const std::string path = TempPath("replay_parse_errors.jsonl");
  {
    std::ofstream out(path, std::ios::trunc);
    AuditRecord record;
    record.seq = 1;
    record.kind = "rbac.enableRole";
    record.role = "A";
    std::string line;
    AppendJsonLine(record, &line);
    out << line << "this is not json\n" << line;
  }
  uint64_t parse_errors = 0;
  auto records = LoadCaptureFile(path, &parse_errors);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 2u);
  EXPECT_EQ(parse_errors, 1u);
}

TEST(ReplayTest, LoadCaptureMissingFileIsAnError) {
  uint64_t parse_errors = 0;
  EXPECT_FALSE(
      LoadCaptureFile("/nonexistent/capture.jsonl", &parse_errors).ok());
}

TEST(ReplayTest, ReportRendersStableGreppableText) {
  const Policy base = FlipBasePolicy();
  auto mutated = WithAddedDsdEdge(base, "DSD_SHADOW");
  ASSERT_TRUE(mutated.ok());
  auto report = ReplayCapture(CaptureFlipSequence(base), *mutated);
  ASSERT_TRUE(report.ok());

  const std::string text = ReportToText(*report);
  EXPECT_NE(text.find("replayed: 4"), std::string::npos);
  EXPECT_NE(text.find("allow_to_deny: 2"), std::string::npos);
  EXPECT_NE(text.find("deny_to_allow: 0"), std::string::npos);
  EXPECT_NE(text.find("flips by "), std::string::npos);
  EXPECT_NE(text.find("allow -> deny"), std::string::npos);

  const std::string json = ReportToJson(*report);
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"allow_to_deny\":2"), std::string::npos);
  EXPECT_NE(json.find("\"flips_by_rule\""), std::string::npos);
}

}  // namespace
}  // namespace audit
}  // namespace sentinel
