#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// End-to-end reproduction of the paper's Section 5 / Figure 1 scenario:
/// enterprise XYZ with purchase and approval chains, static SoD between
/// PC and AC inherited upward through the hierarchies.
class EnterpriseXyzTest : public ::testing::Test {
 protected:
  EnterpriseXyzTest() : clock_(testutil::Noon()), engine_(&clock_) {
    EXPECT_TRUE(engine_.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

TEST_F(EnterpriseXyzTest, PolicyInstantiationMatchesFigure1) {
  // Figure 1 nodes.
  for (const char* role : {"PM", "PC", "AM", "AC", "Clerk"}) {
    EXPECT_TRUE(engine_.rbac().db().HasRole(role)) << role;
  }
  // Solid arrows (hierarchy).
  EXPECT_TRUE(engine_.rbac().hierarchy().Dominates("PM", "PC"));
  EXPECT_TRUE(engine_.rbac().hierarchy().Dominates("PC", "Clerk"));
  EXPECT_TRUE(engine_.rbac().hierarchy().Dominates("AM", "AC"));
  EXPECT_TRUE(engine_.rbac().hierarchy().Dominates("AC", "Clerk"));
  EXPECT_FALSE(engine_.rbac().hierarchy().Dominates("PM", "AC"));
  // Dashed line (static SoD between PC and AC).
  auto sod = engine_.rbac().ssd().GetSet("SoD1");
  ASSERT_TRUE(sod.ok());
  EXPECT_EQ((*sod)->roles, (std::set<RoleName>{"PC", "AC"}));
}

TEST_F(EnterpriseXyzTest, SodInheritedBySeniorRoles) {
  // "A user assigned to the role PM cannot be assigned to the role AM or
  //  AC and vice versa" (Section 5).
  EXPECT_FALSE(engine_.AssignUser("alice", "AM").allowed);  // alice is PM.
  EXPECT_FALSE(engine_.AssignUser("alice", "AC").allowed);
  EXPECT_FALSE(engine_.AssignUser("bob", "PM").allowed);  // bob is AC.
  EXPECT_FALSE(engine_.AssignUser("bob", "PC").allowed);
  // Clerk is common to both chains and carries no SoD flag.
  EXPECT_TRUE(engine_.AssignUser("bob", "Clerk").allowed);
}

TEST_F(EnterpriseXyzTest, PurchaseOrderSeparationHolds) {
  // The motivating scenario: the person placing purchase orders cannot
  // authorize them.
  ASSERT_TRUE(engine_.CreateSession("alice", "sa").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "sa", "PM").allowed);
  // alice (purchase chain) can write purchase orders...
  EXPECT_TRUE(
      engine_.CheckAccess("sa", "write", "purchase-order").allowed);
  // ...but can never approve them (AM's permission).
  EXPECT_FALSE(
      engine_.CheckAccess("sa", "approve", "purchase-order").allowed);

  ASSERT_TRUE(engine_.CreateSession("bob", "sb").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("bob", "sb", "AC").allowed);
  EXPECT_FALSE(
      engine_.CheckAccess("sb", "write", "purchase-order").allowed);
}

TEST_F(EnterpriseXyzTest, GeneratedRulesFollowRoleProperties) {
  // PC takes part in hierarchy + SSD: its activation rule is the AAR2
  // variant (checkAuthorization). The listing makes this visible.
  auto rule = engine_.rule_manager().Find("AAR.PC");
  ASSERT_TRUE(rule.ok());
  const std::string listing =
      (*rule)->Describe(engine_.detector().name((*rule)->event()));
  EXPECT_NE(listing.find("checkAuthorizationPC(user)"), std::string::npos)
      << listing;
  EXPECT_NE(listing.find("Access Denied Cannot Activate"),
            std::string::npos);
  // No DSD in XYZ: no checkDynamicSoDSet condition.
  EXPECT_EQ(listing.find("checkDynamicSoDSet"), std::string::npos);
}

TEST_F(EnterpriseXyzTest, RulePoolCoversEveryRole) {
  // "Similarly all the other rules corresponding to PC and all the other
  //  roles are also created" (Section 5).
  for (const char* role : {"PM", "PC", "AM", "AC", "Clerk"}) {
    EXPECT_TRUE(
        engine_.rule_manager().Find(std::string("AAR.") + role).ok())
        << role;
  }
  // Globalized administrative rules exist once.
  EXPECT_TRUE(engine_.rule_manager().Find("ADM.assign").ok());
  EXPECT_TRUE(engine_.rule_manager().Find("CA.global").ok());
}

TEST_F(EnterpriseXyzTest, PolicyChangeRegeneratesInsteadOfManualEdit) {
  // Section 5's closing argument: a policy change regenerates rules.
  Policy updated = engine_.policy();
  SodSet extra;
  extra.name = "SoD2";
  extra.roles = {"PM", "AM"};
  extra.n = 2;
  ASSERT_TRUE(updated.AddSsd(std::move(extra)).ok());
  auto report = engine_.ApplyPolicyUpdate(updated);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->roles_affected, 2);
  EXPECT_GT(report->rules_added, 0);
  EXPECT_TRUE(engine_.rbac().ssd().GetSet("SoD2").ok());
}

}  // namespace
}  // namespace sentinel
