#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/decision_cache.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "core/report.h"
#include "service/authorization_service.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// Stable-truth policy for the zero-hop read path: alice's Doctor grant
/// never changes during a test's steady state, Temp exists purely as admin
/// enable/disable churn fodder, Biller is a role alice never holds (so her
/// invoice deny is a stable negative verdict).
Policy FastLabPolicy() {
  const char* text = R"(
policy "fastlab"

role Doctor { permission: read(chart), write(chart) }
role Temp { permission: read(scratch) }
role Biller { permission: write(invoice) }

user alice { assign: Doctor }
user bob { assign: Temp }
)";
  auto policy = PolicyParser::Parse(text);
  EXPECT_TRUE(policy.ok()) << policy.status().message();
  return *policy;
}

AccessRequest Req(const std::string& op, const std::string& obj,
                  const std::string& purpose = "") {
  AccessRequest request;
  request.user = "alice";
  request.session = "s1";
  request.operation = op;
  request.object = obj;
  request.purpose = purpose;
  return request;
}

class FastPathServiceTest : public ::testing::Test {
 protected:
  void Start(int shards = 2) {
    ServiceConfig config;
    config.num_shards = shards;
    config.start_time = testutil::Noon();
    config.decision_cache_capacity = 256;
    config.decision_cache_fastpath = true;
    auto service_or = AuthorizationService::Create(config);
    ASSERT_TRUE(service_or.ok()) << service_or.status().message();
    service_ = std::move(*service_or);
    ASSERT_TRUE(service_->LoadPolicy(FastLabPolicy()).ok());
    ASSERT_TRUE(service_->CreateSession("alice", "s1").ok());
    ASSERT_TRUE(service_->AddActiveRole("alice", "s1", "Doctor").ok());
  }

  AuthorizationService& service() { return *service_; }

  std::unique_ptr<AuthorizationService> service_;
};

// --------------------------------------------------------- Hit semantics

TEST_F(FastPathServiceTest, ReplayedAllowIsAnsweredCallerSide) {
  Start();
  // First call dispatches (miss + fill), replays ride the snapshot.
  const AccessDecision first = service().CheckAccess(Req("read", "chart"));
  EXPECT_TRUE(first.allowed);
  const uint64_t warm_hits = service().Stats().fastpath_hits;

  const AccessDecision replay = service().CheckAccess(Req("read", "chart"));
  EXPECT_TRUE(replay.allowed);
  EXPECT_EQ(replay.rule, AuthorizationEngine::kCaRuleName);
  EXPECT_EQ(replay.outcome, AccessOutcome::kDecided);
  EXPECT_EQ(replay.shard, first.shard);
  ServiceStats stats = service().Stats();
  EXPECT_EQ(stats.fastpath_hits, warm_hits + 1);
}

TEST_F(FastPathServiceTest, ReplayedDenyCarriesTheDenyReason) {
  Start();
  // alice is no Biller: a stable negative verdict.
  const AccessDecision first = service().CheckAccess(Req("write", "invoice"));
  EXPECT_FALSE(first.allowed);
  const uint64_t warm_hits = service().Stats().fastpath_hits;

  const AccessDecision replay = service().CheckAccess(Req("write", "invoice"));
  EXPECT_FALSE(replay.allowed);
  EXPECT_EQ(replay.reason, AuthorizationEngine::kDenyReason);
  EXPECT_EQ(replay.outcome, AccessOutcome::kDecided);
  EXPECT_EQ(service().Stats().fastpath_hits, warm_hits + 1);
}

TEST_F(FastPathServiceTest, FastHitsBypassTheEngineButCountInRequests) {
  Start();
  service().CheckAccess(Req("read", "chart"));
  ServiceStats warm = service().Stats();

  // Ten replays: the shard engine decides nothing further, the fast-path
  // counter absorbs all of them.
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  }
  ServiceStats after = service().Stats();
  EXPECT_EQ(after.decisions, warm.decisions);
  EXPECT_EQ(after.fastpath_hits, warm.fastpath_hits + 10);
}

TEST_F(FastPathServiceTest, PurposeCarryingRequestsNeverRideTheFastPath) {
  Start();
  service().CheckAccess(Req("read", "chart"));
  const uint64_t warm_hits = service().Stats().fastpath_hits;
  // Purpose strings are not part of the packed key: every purpose-carrying
  // request must dispatch, even when a purpose-free twin is cached.
  service().CheckAccess(Req("read", "chart", "care"));
  service().CheckAccess(Req("read", "chart", "care"));
  EXPECT_EQ(service().Stats().fastpath_hits, warm_hits);
}

TEST_F(FastPathServiceTest, BatchItemsRideTheSnapshotPositionally) {
  Start();
  // Warm two keys through the mailbox.
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  ASSERT_FALSE(service().CheckAccess(Req("write", "invoice")).allowed);
  const uint64_t warm_hits = service().Stats().fastpath_hits;

  // A batch mixing warm hits, a cold miss and a purpose bypass: results
  // must stay positionally aligned regardless of which path answered.
  std::vector<AccessRequest> batch = {
      Req("read", "chart"),           // fast hit (allow)
      Req("write", "invoice"),        // fast hit (deny)
      Req("write", "chart"),          // cold: mailbox miss + fill
      Req("read", "chart", "care"),   // purpose: mailbox, uncached
      Req("read", "chart"),           // fast hit again
  };
  std::vector<AccessDecision> decisions = service().CheckAccessBatch(batch);
  ASSERT_EQ(decisions.size(), batch.size());
  EXPECT_TRUE(decisions[0].allowed);
  EXPECT_FALSE(decisions[1].allowed);
  EXPECT_EQ(decisions[1].reason, AuthorizationEngine::kDenyReason);
  EXPECT_TRUE(decisions[2].allowed);
  EXPECT_TRUE(decisions[3].allowed);
  EXPECT_TRUE(decisions[4].allowed);
  EXPECT_EQ(service().Stats().fastpath_hits, warm_hits + 3);
}

TEST_F(FastPathServiceTest, AllFastBatchSkipsTheMailboxEntirely) {
  Start();
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  ServiceStats warm = service().Stats();

  std::vector<AccessRequest> batch(8, Req("read", "chart"));
  std::vector<AccessDecision> decisions = service().CheckAccessBatch(batch);
  ASSERT_EQ(decisions.size(), batch.size());
  for (const AccessDecision& d : decisions) EXPECT_TRUE(d.allowed);
  ServiceStats after = service().Stats();
  EXPECT_EQ(after.fastpath_hits, warm.fastpath_hits + 8);
  EXPECT_EQ(after.decisions, warm.decisions);
}

// ------------------------------------------------- Invalidation edges

TEST_F(FastPathServiceTest, AdminBroadcastMovesTheStampBeforeReturning) {
  Start();
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);  // Warm.

  // The broadcast returns only after every shard applied it — and every
  // shard published its moved stamp first. A fast hit after this line can
  // therefore never replay the pre-broadcast verdict.
  ASSERT_TRUE(service().DeassignUser("alice", "Doctor").ok());
  const AccessDecision after = service().CheckAccess(Req("read", "chart"));
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, AuthorizationEngine::kDenyReason);
}

TEST_F(FastPathServiceTest, SessionRoleChurnInvalidatesCallerSideReplays) {
  Start();
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);  // Warm.

  ASSERT_TRUE(service().DropActiveRole("alice", "s1", "Doctor").ok());
  EXPECT_FALSE(service().CheckAccess(Req("read", "chart")).allowed);

  ASSERT_TRUE(service().AddActiveRole("alice", "s1", "Doctor").ok());
  EXPECT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
}

TEST_F(FastPathServiceTest, UnrelatedBroadcastCostsHitsNeverCorrectness) {
  Start();
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);  // Warm.

  // An admin change that does not touch alice still moves the coarse stamp
  // (epoch component) — the next call re-dispatches and re-fills, then
  // replays resume.
  ASSERT_TRUE(service().EnableRole("Temp").ok());
  EXPECT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  const uint64_t hits = service().Stats().fastpath_hits;
  EXPECT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  EXPECT_EQ(service().Stats().fastpath_hits, hits + 1);
}

// -------------------------------------- Torn publish (fault injection)

TEST_F(FastPathServiceTest, TornPublishForcesTheMailboxFallback) {
  Start();
  ASSERT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);  // Fill.
  const uint32_t shard = service().ShardOf("alice");

  // Resolve the packed key and a shard-thread engine handle race-free.
  uint64_t key = 0;
  AuthorizationEngine* shard_engine = nullptr;
  service().Inspect(shard, [&](const AuthorizationEngine& engine) {
    shard_engine = const_cast<AuthorizationEngine*>(&engine);
    const Symbol session = engine.symbols().Find("s1");
    const Symbol op = engine.symbols().Find("read");
    const Symbol obj = engine.symbols().Find("chart");
    ASSERT_TRUE(session.valid() && op.valid() && obj.valid());
    key = *DecisionCache::PackKey(session, op, obj);
  });

  // Writer-stall fault: freeze the entry's shared slot mid-publish, on the
  // shard thread. InjectShardFault returns without waiting, so barrier
  // with a no-op Inspect before reading.
  ASSERT_TRUE(service().InjectShardFault(shard, [shard_engine, key] {
    shard_engine->decision_cache_for_test().BeginTornPublishForTest(key);
  }));
  service().Inspect(shard, [](const AuthorizationEngine&) {});

  // The seqlock is odd: readers must refuse the slot and fall back. The
  // verdict still comes back right — through the mailbox.
  const uint64_t hits_before = service().Stats().fastpath_hits;
  const AccessDecision during = service().CheckAccess(Req("read", "chart"));
  EXPECT_TRUE(during.allowed);
  EXPECT_EQ(service().Stats().fastpath_hits, hits_before);

  // Publish completes: the same entry serves fast hits again.
  ASSERT_TRUE(service().InjectShardFault(shard, [shard_engine, key] {
    shard_engine->decision_cache_for_test().EndTornPublishForTest(key);
  }));
  service().Inspect(shard, [](const AuthorizationEngine&) {});
  EXPECT_TRUE(service().CheckAccess(Req("read", "chart")).allowed);
  EXPECT_EQ(service().Stats().fastpath_hits, hits_before + 1);
}

// ----------------------------------------------- Modes and observability

TEST(FastPathModeTest, SynchronousModeIgnoresTheFlag) {
  ServiceConfig config;
  config.num_shards = 1;
  config.synchronous = true;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 256;
  config.decision_cache_fastpath = true;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(FastLabPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "Doctor").ok());

  // Inline calls have no mailbox to skip: the engine's own cache serves
  // replays and the fast-path counter stays dark.
  EXPECT_TRUE(service.CheckAccess(Req("read", "chart")).allowed);
  EXPECT_TRUE(service.CheckAccess(Req("read", "chart")).allowed);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.fastpath_hits, 0u);
  EXPECT_GE(stats.cache_hits, 1u);
}

TEST_F(FastPathServiceTest, HitsSurfaceInExpositionAndAdminReport) {
  Start();
  service().CheckAccess(Req("read", "chart"));
  for (int i = 0; i < 5; ++i) service().CheckAccess(Req("read", "chart"));

  const std::string exposition = service().RenderMetrics();
  EXPECT_NE(exposition.find("decision_cache_fastpath_hits_total"),
            std::string::npos);

  std::string report;
  service().Inspect(service().ShardOf("alice"),
                    [&report](const AuthorizationEngine& engine) {
                      report = GenerateAdminReport(engine, {});
                    });
  EXPECT_NE(report.find("zero-hop fast path:"), std::string::npos);
}

// ------------------------------------------------- Config validation

TEST(FastPathConfigTest, RejectsNonPowerOfTwoMailboxCapacity) {
  ServiceConfig config;
  config.num_shards = 1;
  config.mailbox_capacity = 3;  // The decision lane is a slot ring.
  EXPECT_FALSE(AuthorizationService::ValidateConfig(config).ok());
  EXPECT_FALSE(AuthorizationService::Create(config).ok());

  config.mailbox_capacity = 4;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(config).ok());
  config.mailbox_capacity = 0;  // Unbounded is fine.
  EXPECT_TRUE(AuthorizationService::ValidateConfig(config).ok());
}

TEST(FastPathConfigTest, RejectsFastPathWithoutACache) {
  ServiceConfig config;
  config.num_shards = 1;
  config.decision_cache_fastpath = true;
  config.decision_cache_capacity = 0;
  EXPECT_FALSE(AuthorizationService::ValidateConfig(config).ok());
  EXPECT_FALSE(AuthorizationService::Create(config).ok());

  config.decision_cache_capacity = 64;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(config).ok());
}

TEST(FastPathConfigTest, ConstructorDegradeForcesTheFastPathOff) {
  ServiceConfig config;
  config.num_shards = 1;
  config.start_time = testutil::Noon();
  config.decision_cache_fastpath = true;
  config.decision_cache_capacity = 0;  // Invalid combination.
  AuthorizationService service(config);
  EXPECT_FALSE(service.init_status().ok());

  // Degraded but serving — with no cache there is no snapshot, so the fast
  // path must be off, not crashing on an empty mirror.
  ASSERT_TRUE(service.LoadPolicy(FastLabPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "Doctor").ok());
  EXPECT_TRUE(service.CheckAccess(Req("read", "chart")).allowed);
  EXPECT_TRUE(service.CheckAccess(Req("read", "chart")).allowed);
  EXPECT_EQ(service.Stats().fastpath_hits, 0u);
}

// ------------------------------------------------------- TSan stress

/// Concurrent readers hammer two stable-truth keys through the zero-hop
/// path while the main thread storms admin broadcasts, session churn and
/// timer advances. Truth for alice never changes, so every verdict is
/// checkable exactly; TSan checks the seqlock protocol underneath. Sized
/// to stay meaningful under --gtest_repeat=3 with TSan's ~10x slowdown.
TEST(FastPathStressTest, ReadersRaceAdminBroadcastsAndChurn) {
  ServiceConfig config;
  config.num_shards = 2;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 1024;
  config.decision_cache_fastpath = true;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(FastLabPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "Doctor").ok());

  // Warm both keys so readers start on the snapshot.
  ASSERT_TRUE(service.CheckAccess(Req("read", "chart")).allowed);
  ASSERT_FALSE(service.CheckAccess(Req("write", "invoice")).allowed);

  constexpr int kReaders = 4;
  constexpr int kIterations = 3000;
  std::atomic<uint64_t> divergences{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &divergences] {
      for (int i = 0; i < kIterations; ++i) {
        const AccessDecision allow = service.CheckAccess(Req("read", "chart"));
        if (!allow.allowed || allow.outcome != AccessOutcome::kDecided) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
        const AccessDecision deny =
            service.CheckAccess(Req("write", "invoice"));
        if (deny.allowed || deny.outcome != AccessOutcome::kDecided) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The storm: every op moves published stamps on every shard while the
  // readers above race the republishes.
  for (int round = 0; round < 100; ++round) {
    ASSERT_TRUE(service.DisableRole("Temp").ok());
    ASSERT_TRUE(service.EnableRole("Temp").ok());
    const std::string session = "bob-" + std::to_string(round);
    ASSERT_TRUE(service.CreateSession("bob", session).ok());
    ASSERT_TRUE(service.DeleteSession(session).ok());
    ASSERT_TRUE(service.AdvanceBy(kMinute).ok());
  }
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(divergences.load(), 0u);
  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.fastpath_hits, 0u);

  // Post-storm linearization: stripping the grant must be visible to the
  // very next call.
  ASSERT_TRUE(service.DeassignUser("alice", "Doctor").ok());
  const AccessDecision after = service.CheckAccess(Req("read", "chart"));
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, AuthorizationEngine::kDenyReason);
}

/// The same reader race against continuous PAUSELESS SWAPS instead of
/// epoch broadcasts: the storm thread streams ApplyPolicyUpdates toggling
/// Temp's permission set (each one regenerates rules, flips every shard's
/// generation pointer and republishes the fast stamp — with no barrier and
/// no cache-epoch wipe) interleaved with session churn and advances.
/// alice's truths never change across generations, so every fast-path
/// verdict stays exactly checkable while the generation underneath it
/// turns over; TSan checks the seqlock + shared_ptr reclamation protocol.
TEST(FastPathStressTest, ReadersRaceContinuousPauselessSwaps) {
  ServiceConfig config;
  config.num_shards = 2;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 1024;
  config.decision_cache_fastpath = true;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(FastLabPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "Doctor").ok());

  // Warm both keys so readers start on the snapshot.
  ASSERT_TRUE(service.CheckAccess(Req("read", "chart")).allowed);
  ASSERT_FALSE(service.CheckAccess(Req("write", "invoice")).allowed);

  // Temp's grant toggles; alice (Doctor) is untouched in either variant.
  Policy plain = FastLabPolicy();
  Policy widened = FastLabPolicy();
  {
    auto temp = widened.MutableRole("Temp");
    ASSERT_TRUE(temp.ok());
    (*temp)->permissions.insert(Permission{"write", "scratch"});
  }

  constexpr int kReaders = 4;
  constexpr int kIterations = 3000;
  std::atomic<uint64_t> divergences{0};
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&service, &divergences] {
      for (int i = 0; i < kIterations; ++i) {
        const AccessDecision allow = service.CheckAccess(Req("read", "chart"));
        if (!allow.allowed || allow.outcome != AccessOutcome::kDecided) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
        const AccessDecision deny =
            service.CheckAccess(Req("write", "invoice"));
        if (deny.allowed || deny.outcome != AccessOutcome::kDecided) {
          divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }

  // The storm: every round retires a generation mid-flight on both shards
  // while readers race the stamp republishes and the dying generation's
  // reclamation.
  for (int round = 0; round < 100; ++round) {
    const auto widen = service.ApplyPolicyUpdate(widened);
    ASSERT_TRUE(widen.ok()) << widen.status();
    const auto narrow = service.ApplyPolicyUpdate(plain);
    ASSERT_TRUE(narrow.ok()) << narrow.status();
    const std::string session = "bob-" + std::to_string(round);
    ASSERT_TRUE(service.CreateSession("bob", session).ok());
    ASSERT_TRUE(service.DeleteSession(session).ok());
    ASSERT_TRUE(service.AdvanceBy(kMinute).ok());
  }
  for (std::thread& reader : readers) reader.join();

  EXPECT_EQ(divergences.load(), 0u);
  ServiceStats stats = service.Stats();
  EXPECT_GT(stats.fastpath_hits, 0u);
  EXPECT_EQ(stats.policy_swaps, 200u);
  EXPECT_EQ(stats.policy_swap_failures, 0u);

  // Post-storm linearization: a swap that strips alice's ASSIGNMENT (a
  // policy edit, not a runtime deassign) must be visible — as a policy
  // deny, through cache and fast path — to the very next call.
  Policy stripped = FastLabPolicy();
  {
    auto alice = stripped.MutableUser("alice");
    ASSERT_TRUE(alice.ok());
    (*alice)->assignments.erase("Doctor");
  }
  const auto strip = service.ApplyPolicyUpdate(stripped);
  ASSERT_TRUE(strip.ok()) << strip.status();
  const AccessDecision after = service.CheckAccess(Req("read", "chart"));
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, AuthorizationEngine::kDenyReason);
}

}  // namespace
}  // namespace sentinel
