// Direct unit tests for the shard Mailbox: FIFO totality under concurrent
// producers, the drain-not-drop shutdown contract, and the overload
// behaviors of the bounded decision lane (capacity, blocking admission,
// deadlines, exemption of the admin lane).

#include "service/mailbox.h"

#include <atomic>
#include <chrono>
#include <deque>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "telemetry/metrics.h"

namespace sentinel {
namespace {

using IntBox = Mailbox<int>;
using PushResult = IntBox::PushResult;

int64_t NanosFromNow(int64_t ns) { return telemetry::NowNanos() + ns; }

// ------------------------------------------------------------ FIFO & drain

TEST(MailboxTest, PopAllReturnsWholeBacklogInOrder) {
  IntBox mailbox;
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(mailbox.Push(i));
  std::deque<int> batch;
  ASSERT_TRUE(mailbox.PopAll(&batch));
  ASSERT_EQ(batch.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(batch[static_cast<size_t>(i)], i);
  EXPECT_EQ(mailbox.depth(), 0u);
}

TEST(MailboxTest, FifoOrderHoldsUnderConcurrentProducers) {
  // Each producer pushes an ascending sequence tagged with its id; total
  // FIFO order implies every producer's subsequence arrives ascending.
  IntBox mailbox;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 2000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mailbox, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(mailbox.Push(p * kPerProducer + i));
      }
    });
  }
  std::vector<int> consumed;
  std::thread consumer([&mailbox, &consumed] {
    std::deque<int> batch;
    while (mailbox.PopAll(&batch)) {
      consumed.insert(consumed.end(), batch.begin(), batch.end());
    }
  });
  for (std::thread& thread : producers) thread.join();
  mailbox.Close();
  consumer.join();

  ASSERT_EQ(consumed.size(),
            static_cast<size_t>(kProducers * kPerProducer));
  std::vector<int> last_seen(kProducers, -1);
  for (const int value : consumed) {
    const int producer = value / kPerProducer;
    const int seq = value % kPerProducer;
    EXPECT_GT(seq, last_seen[static_cast<size_t>(producer)]);
    last_seen[static_cast<size_t>(producer)] = seq;
  }
}

TEST(MailboxTest, CloseDrainsBacklogThenRefuses) {
  IntBox mailbox;
  EXPECT_TRUE(mailbox.Push(1));
  EXPECT_TRUE(mailbox.Push(2));
  mailbox.Close();
  // Both lanes refuse after Close...
  EXPECT_FALSE(mailbox.Push(3));
  EXPECT_EQ(mailbox.PushBounded(4, /*block=*/true, /*deadline_ns=*/0),
            PushResult::kClosed);
  // ...but the backlog is still handed over — drain, don't drop.
  std::deque<int> batch;
  ASSERT_TRUE(mailbox.PopAll(&batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[0], 1);
  EXPECT_EQ(batch[1], 2);
  // Closed and drained: the consumer's exit signal, without blocking.
  EXPECT_FALSE(mailbox.PopAll(&batch));
}

// ------------------------------------------------------------ Bounded lane

TEST(MailboxTest, ShedModeFailsFastAtCapacity) {
  IntBox mailbox;
  mailbox.set_capacity(2);
  size_t depth = 0;
  EXPECT_EQ(mailbox.PushBounded(1, /*block=*/false, 0, &depth),
            PushResult::kOk);
  EXPECT_EQ(depth, 1u);
  EXPECT_EQ(mailbox.PushBounded(2, /*block=*/false, 0, &depth),
            PushResult::kOk);
  EXPECT_EQ(depth, 2u);
  EXPECT_EQ(mailbox.PushBounded(3, /*block=*/false, 0), PushResult::kFull);
  EXPECT_EQ(mailbox.depth(), 2u);
  EXPECT_EQ(mailbox.peak_depth(), 2u);
  // The shed item is gone; the queue holds exactly the admitted two.
  std::deque<int> batch;
  ASSERT_TRUE(mailbox.PopAll(&batch));
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_EQ(batch[1], 2);
}

TEST(MailboxTest, ExemptLaneIgnoresCapacity) {
  IntBox mailbox;
  mailbox.set_capacity(1);
  EXPECT_EQ(mailbox.PushBounded(1, /*block=*/false, 0), PushResult::kOk);
  EXPECT_EQ(mailbox.PushBounded(2, /*block=*/false, 0), PushResult::kFull);
  // Admin traffic must always land — the epoch barrier depends on it.
  EXPECT_TRUE(mailbox.Push(100));
  EXPECT_TRUE(mailbox.Push(101));
  EXPECT_EQ(mailbox.depth(), 3u);
  EXPECT_EQ(mailbox.peak_depth(), 3u);
}

TEST(MailboxTest, BlockedProducerAdmittedWhenConsumerDrains) {
  IntBox mailbox;
  mailbox.set_capacity(1);
  ASSERT_EQ(mailbox.PushBounded(1, /*block=*/false, 0), PushResult::kOk);
  std::atomic<bool> admitted{false};
  std::thread producer([&] {
    EXPECT_EQ(mailbox.PushBounded(2, /*block=*/true, /*deadline_ns=*/0),
              PushResult::kOk);
    admitted.store(true);
  });
  // The producer must be parked, not spinning past the cap.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(mailbox.depth(), 1u);

  std::deque<int> batch;
  ASSERT_TRUE(mailbox.PopAll(&batch));
  producer.join();
  EXPECT_TRUE(admitted.load());
  ASSERT_TRUE(mailbox.PopAll(&batch));
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0], 2);
  EXPECT_EQ(mailbox.peak_depth(), 1u);  // Never above capacity.
}

TEST(MailboxTest, BlockedProducerExpiresAtDeadline) {
  IntBox mailbox;
  mailbox.set_capacity(1);
  ASSERT_EQ(mailbox.PushBounded(1, /*block=*/false, 0), PushResult::kOk);
  const int64_t deadline = NanosFromNow(5'000'000);  // 5ms.
  EXPECT_EQ(mailbox.PushBounded(2, /*block=*/true, deadline),
            PushResult::kExpired);
  EXPECT_GE(telemetry::NowNanos(), deadline);
  EXPECT_EQ(mailbox.depth(), 1u);  // The expired item never entered.
}

TEST(MailboxTest, CloseWakesBlockedProducer) {
  IntBox mailbox;
  mailbox.set_capacity(1);
  ASSERT_EQ(mailbox.PushBounded(1, /*block=*/false, 0), PushResult::kOk);
  std::atomic<bool> refused{false};
  std::thread producer([&] {
    EXPECT_EQ(mailbox.PushBounded(2, /*block=*/true, /*deadline_ns=*/0),
              PushResult::kClosed);
    refused.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  mailbox.Close();
  producer.join();
  EXPECT_TRUE(refused.load());
  // The pre-close item still drains.
  std::deque<int> batch;
  ASSERT_TRUE(mailbox.PopAll(&batch));
  ASSERT_EQ(batch.size(), 1u);
}

TEST(MailboxTest, CapacityZeroIsUnbounded) {
  IntBox mailbox;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(mailbox.PushBounded(i, /*block=*/false, 0), PushResult::kOk);
  }
  EXPECT_EQ(mailbox.depth(), 1000u);
  EXPECT_EQ(mailbox.peak_depth(), 1000u);
}

TEST(MailboxTest, DepthStaysBoundedUnderShedPressure) {
  // Many producers shedding against a tiny capacity while a consumer
  // drains: the peak depth must never exceed the cap, and every push must
  // be accounted for (admitted xor shed).
  IntBox mailbox;
  constexpr size_t kCapacity = 4;
  mailbox.set_capacity(kCapacity);
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 5000;
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> shed{0};
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        switch (mailbox.PushBounded(i, /*block=*/false, 0)) {
          case PushResult::kOk:
            admitted.fetch_add(1);
            break;
          case PushResult::kFull:
            shed.fetch_add(1);
            break;
          default:
            FAIL() << "unexpected push result";
        }
      }
    });
  }
  std::atomic<uint64_t> consumed{0};
  std::thread consumer([&] {
    std::deque<int> batch;
    while (mailbox.PopAll(&batch)) {
      consumed.fetch_add(batch.size());
    }
  });
  for (std::thread& thread : producers) thread.join();
  mailbox.Close();
  consumer.join();

  EXPECT_LE(mailbox.peak_depth(), kCapacity);
  EXPECT_EQ(admitted.load() + shed.load(),
            static_cast<uint64_t>(kProducers * kPerProducer));
  EXPECT_EQ(consumed.load(), admitted.load());  // Drained, not dropped.
}

TEST(MailboxTest, MailboxPeakDepthIsExactAcrossBothLanes) {
  // With no consumer, the high-water mark must land EXACTLY on the total
  // enqueued count even under concurrent mixed-lane producers — peak depth
  // is measured from one linearizable counter, not approximated from the
  // two per-lane sizes (which could each read below their joint sum).
  IntBox mailbox;
  mailbox.set_capacity(4096);
  constexpr int kRingProducers = 3;
  constexpr int kExemptProducers = 2;
  constexpr int kPerProducer = 500;
  std::vector<std::thread> producers;
  for (int p = 0; p < kRingProducers; ++p) {
    producers.emplace_back([&mailbox] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_EQ(mailbox.PushBounded(i, /*block=*/false, 0),
                  PushResult::kOk);
      }
    });
  }
  for (int p = 0; p < kExemptProducers; ++p) {
    producers.emplace_back([&mailbox] {
      for (int i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(mailbox.Push(i));
      }
    });
  }
  for (std::thread& thread : producers) thread.join();

  constexpr size_t kTotal =
      static_cast<size_t>(kRingProducers + kExemptProducers) * kPerProducer;
  EXPECT_EQ(mailbox.depth(), kTotal);
  EXPECT_EQ(mailbox.peak_depth(), kTotal);

  // Draining moves the depth down without disturbing the recorded peak.
  std::deque<int> batch;
  ASSERT_TRUE(mailbox.PopAll(&batch));
  EXPECT_EQ(batch.size(), kTotal);
  EXPECT_EQ(mailbox.depth(), 0u);
  EXPECT_EQ(mailbox.peak_depth(), kTotal);
}

}  // namespace
}  // namespace sentinel
