#include "common/status.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.message(), "");
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("no such role: PM");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "no such role: PM");
  EXPECT_EQ(s.ToString(), "NotFound: no such role: PM");
}

TEST(StatusTest, AllFactoriesMapToPredicates) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::ConstraintViolation("x").IsConstraintViolation());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CopySemantics) {
  Status a = Status::InvalidArgument("bad");
  Status b = a;
  EXPECT_TRUE(b.IsInvalidArgument());
  EXPECT_EQ(b.message(), "bad");
  // Original unchanged after copy-assign over it.
  b = Status::OK();
  EXPECT_TRUE(b.ok());
  EXPECT_TRUE(a.IsInvalidArgument());
}

TEST(StatusTest, MoveSemantics) {
  Status a = Status::NotFound("gone");
  Status b = std::move(a);
  EXPECT_TRUE(b.IsNotFound());
  EXPECT_TRUE(a.ok());  // Moved-from is OK (empty) by construction.
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kConstraintViolation),
               "ConstraintViolation");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MovesValueOut) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string s = std::move(r).value();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

Status FailingStep() { return Status::Internal("boom"); }

Status UsesReturnIfError() {
  SENTINEL_RETURN_IF_ERROR(FailingStep());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError().IsInternal());
}

Result<int> ProducesValue() { return 10; }

Status UsesAssignOrReturn(int* out) {
  SENTINEL_ASSIGN_OR_RETURN(v, ProducesValue());
  *out = v + 1;
  return Status::OK();
}

TEST(ResultTest, AssignOrReturnBinds) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 11);
}

}  // namespace
}  // namespace sentinel
