#include "baseline/trbac_baseline.h"

#include <gtest/gtest.h>

#include "common/calendar.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

TEST(TrbacBaselineTest, InitialStateFromPeriod) {
  SimulatedClock clock(testutil::Noon());
  TrbacBaseline trbac(&clock);
  trbac.AddEnablingTrigger("Day", testutil::TenToFive());
  trbac.AddEnablingTrigger(
      "Night", *PeriodicExpression::Create(testutil::Daily(22),
                                           testutil::Daily(6)));
  EXPECT_TRUE(trbac.IsEnabled("Day"));
  EXPECT_FALSE(trbac.IsEnabled("Night"));
}

TEST(TrbacBaselineTest, TriggersFireOnAdvance) {
  SimulatedClock clock(testutil::Noon());
  TrbacBaseline trbac(&clock);
  trbac.AddEnablingTrigger("Day", testutil::TenToFive());
  trbac.AdvanceTo(MakeTime(2026, 7, 6, 18, 0, 0));
  EXPECT_FALSE(trbac.IsEnabled("Day"));
  trbac.AdvanceTo(MakeTime(2026, 7, 7, 10, 30, 0));
  EXPECT_TRUE(trbac.IsEnabled("Day"));
  EXPECT_EQ(trbac.firings(), 2u);  // 17:00 off, 10:00 on.
}

TEST(TrbacBaselineTest, ManyDaysManyFirings) {
  SimulatedClock clock(testutil::Noon());
  TrbacBaseline trbac(&clock);
  trbac.AddEnablingTrigger("Day", testutil::TenToFive());
  trbac.AdvanceTo(testutil::Noon() + 10 * kDay);
  EXPECT_EQ(trbac.firings(), 20u);  // 2 boundaries per day.
  EXPECT_TRUE(trbac.IsEnabled("Day"));  // Noon again.
}

TEST(TrbacBaselineTest, UnknownRoleDefaultsEnabled) {
  SimulatedClock clock(testutil::Noon());
  TrbacBaseline trbac(&clock);
  EXPECT_TRUE(trbac.IsEnabled("Anything"));
}

}  // namespace
}  // namespace sentinel
