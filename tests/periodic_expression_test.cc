#include "gtrbac/periodic_expression.h"

#include <gtest/gtest.h>

#include "common/calendar.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

using testutil::Daily;

TEST(PeriodicExpressionTest, CreateValidations) {
  EXPECT_FALSE(PeriodicExpression::Create(Daily(10), Daily(10)).ok());
  EXPECT_FALSE(
      PeriodicExpression::Create(100, 100, Daily(10), Daily(17)).ok());
  EXPECT_TRUE(PeriodicExpression::Create(Daily(10), Daily(17)).ok());
}

TEST(PeriodicExpressionTest, ContainsDailyWindow) {
  const PeriodicExpression p = testutil::TenToFive();
  EXPECT_TRUE(p.Contains(MakeTime(2026, 7, 6, 12, 0, 0)));
  EXPECT_TRUE(p.Contains(MakeTime(2026, 7, 6, 16, 59, 59)));
  EXPECT_FALSE(p.Contains(MakeTime(2026, 7, 6, 9, 59, 59)));
  EXPECT_FALSE(p.Contains(MakeTime(2026, 7, 6, 18, 0, 0)));
}

TEST(PeriodicExpressionTest, BoundaryInstants) {
  const PeriodicExpression p = testutil::TenToFive();
  // Window start inclusive, end exclusive.
  EXPECT_TRUE(p.Contains(MakeTime(2026, 7, 6, 10, 0, 0)));
  EXPECT_FALSE(p.Contains(MakeTime(2026, 7, 6, 17, 0, 0)));
}

TEST(PeriodicExpressionTest, OvernightWindow) {
  const auto p = PeriodicExpression::Create(Daily(22), Daily(6));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(MakeTime(2026, 7, 6, 23, 0, 0)));
  EXPECT_TRUE(p->Contains(MakeTime(2026, 7, 7, 3, 0, 0)));
  EXPECT_FALSE(p->Contains(MakeTime(2026, 7, 6, 12, 0, 0)));
}

TEST(PeriodicExpressionTest, BoundsClipWindows) {
  const Time begin = MakeTime(2026, 7, 6);
  const Time end = MakeTime(2026, 7, 8);
  const auto p =
      PeriodicExpression::Create(begin, end, Daily(10), Daily(17));
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(MakeTime(2026, 7, 6, 12, 0, 0)));
  EXPECT_TRUE(p->Contains(MakeTime(2026, 7, 7, 12, 0, 0)));
  EXPECT_FALSE(p->Contains(MakeTime(2026, 7, 8, 12, 0, 0)));   // Past end.
  EXPECT_FALSE(p->Contains(MakeTime(2026, 7, 5, 12, 0, 0)));   // Before.
}

TEST(PeriodicExpressionTest, NextWindowStartAndEnd) {
  const PeriodicExpression p = testutil::TenToFive();
  const Time noon = MakeTime(2026, 7, 6, 12, 0, 0);
  EXPECT_EQ(*p.NextWindowStart(noon), MakeTime(2026, 7, 7, 10, 0, 0));
  EXPECT_EQ(*p.NextWindowEnd(noon), MakeTime(2026, 7, 6, 17, 0, 0));
}

TEST(PeriodicExpressionTest, NextWindowRespectsBounds) {
  const Time begin = MakeTime(2026, 7, 6);
  const Time end = MakeTime(2026, 7, 7);
  const auto p =
      PeriodicExpression::Create(begin, end, Daily(10), Daily(17));
  ASSERT_TRUE(p.ok());
  // After the last in-bounds start, no more windows.
  EXPECT_FALSE(
      p->NextWindowStart(MakeTime(2026, 7, 6, 12, 0, 0)).has_value());
  EXPECT_TRUE(p->NextWindowEnd(MakeTime(2026, 7, 6, 12, 0, 0)).has_value());
}

TEST(PeriodicExpressionTest, ParseRoundTrip) {
  const auto p = PeriodicExpression::Parse("10:00:00 - 17:00:00");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(MakeTime(2026, 7, 6, 12, 0, 0)));
  EXPECT_FALSE(p->Contains(MakeTime(2026, 7, 6, 8, 0, 0)));
  EXPECT_FALSE(PeriodicExpression::Parse("10:00:00").ok());
  EXPECT_FALSE(PeriodicExpression::Parse("").ok());
}

TEST(PeriodicExpressionTest, ParseWithoutSpaces) {
  const auto p = PeriodicExpression::Parse("08:30:00-16:30:00");
  ASSERT_TRUE(p.ok());
  EXPECT_TRUE(p->Contains(MakeTime(2026, 7, 6, 9, 0, 0)));
}

TEST(PeriodicExpressionTest, ToStringUnboundedOmitsInterval) {
  const PeriodicExpression p = testutil::TenToFive();
  EXPECT_EQ(p.ToString(), "10:00:00/*/*/* - 17:00:00/*/*/*");
}

TEST(PeriodicExpressionTest, ContainsConsistentWithBoundaryScan) {
  // Property: Contains flips exactly at NextWindowStart/NextWindowEnd.
  const PeriodicExpression p = testutil::TenToFive();
  Time t = MakeTime(2026, 7, 6, 0, 0, 0);
  for (int i = 0; i < 8; ++i) {
    const bool inside = p.Contains(t);
    const auto next_start = p.NextWindowStart(t);
    const auto next_end = p.NextWindowEnd(t);
    ASSERT_TRUE(next_start.has_value());
    ASSERT_TRUE(next_end.has_value());
    if (inside) {
      EXPECT_LT(*next_end, *next_start);
      // One microsecond before the end we are still inside.
      EXPECT_TRUE(p.Contains(*next_end - 1));
      EXPECT_FALSE(p.Contains(*next_end));
      t = *next_end;
    } else {
      EXPECT_LT(*next_start, *next_end);
      EXPECT_FALSE(p.Contains(*next_start - 1));
      EXPECT_TRUE(p.Contains(*next_start));
      t = *next_start;
    }
  }
}

}  // namespace
}  // namespace sentinel
