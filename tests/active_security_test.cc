#include "core/active_security.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace sentinel {
namespace {

TEST(ActiveSecurityMonitorTest, RecordDenialCountsWithinWindow) {
  ActiveSecurityMonitor monitor;
  monitor.DefineWindow("guard", 60 * kSecond, 3);
  EXPECT_EQ(monitor.RecordDenial("guard", 0), 1);
  EXPECT_EQ(monitor.RecordDenial("guard", 10 * kSecond), 2);
  EXPECT_EQ(monitor.RecordDenial("guard", 20 * kSecond), 3);
  EXPECT_TRUE(monitor.ThresholdReached("guard"));
}

TEST(ActiveSecurityMonitorTest, OldDenialsSlideOut) {
  ActiveSecurityMonitor monitor;
  monitor.DefineWindow("guard", 60 * kSecond, 3);
  monitor.RecordDenial("guard", 0);
  monitor.RecordDenial("guard", 10 * kSecond);
  // At t=70s the 60s window covers (10s, 70s]: both old denials aged out.
  EXPECT_EQ(monitor.RecordDenial("guard", 70 * kSecond), 1);
  EXPECT_FALSE(monitor.ThresholdReached("guard"));
}

TEST(ActiveSecurityMonitorTest, BoundaryIsExclusive) {
  ActiveSecurityMonitor monitor;
  monitor.DefineWindow("guard", 60 * kSecond, 2);
  monitor.RecordDenial("guard", 0);
  // Exactly window-width later: the first one has just aged out.
  EXPECT_EQ(monitor.RecordDenial("guard", 60 * kSecond), 1);
}

TEST(ActiveSecurityMonitorTest, UnknownDirectiveIgnored) {
  ActiveSecurityMonitor monitor;
  EXPECT_EQ(monitor.RecordDenial("ghost", 0), 0);
  EXPECT_FALSE(monitor.ThresholdReached("ghost"));
}

TEST(ActiveSecurityMonitorTest, AlertRecordsAndClearsWindow) {
  CapturingLogSink sink;
  ActiveSecurityMonitor monitor;
  monitor.DefineWindow("guard", 60 * kSecond, 2);
  monitor.RecordDenial("guard", 0);
  monitor.RecordDenial("guard", 1);
  monitor.RaiseAlert("guard", 1, 2, "burst");
  ASSERT_EQ(monitor.alert_count(), 1);
  EXPECT_EQ(monitor.alerts()[0].directive, "guard");
  EXPECT_EQ(monitor.alerts()[0].observed_count, 2);
  EXPECT_TRUE(sink.Contains("internal security alert [guard]"));
  // Window cleared: the same burst does not re-alert.
  EXPECT_FALSE(monitor.ThresholdReached("guard"));
}

TEST(ActiveSecurityMonitorTest, RemoveWindowStopsCounting) {
  ActiveSecurityMonitor monitor;
  monitor.DefineWindow("guard", 60 * kSecond, 2);
  monitor.RemoveWindow("guard");
  EXPECT_EQ(monitor.RecordDenial("guard", 0), 0);
}

TEST(ActiveSecurityMonitorTest, AuditReportsCounted) {
  ActiveSecurityMonitor monitor;
  monitor.RecordAuditReport("daily", 0);
  monitor.RecordAuditReport("daily", kDay);
  EXPECT_EQ(monitor.audit_report_count("daily"), 2);
  EXPECT_EQ(monitor.audit_report_count("other"), 0);
}

TEST(ActiveSecurityMonitorTest, TotalDenialsAcrossDirectives) {
  ActiveSecurityMonitor monitor;
  monitor.DefineWindow("a", kMinute, 5);
  monitor.DefineWindow("b", kMinute, 5);
  monitor.RecordDenial("a", 0);
  monitor.RecordDenial("b", 0);
  monitor.RecordDenial("ghost", 0);  // Not counted.
  EXPECT_EQ(monitor.total_denials_recorded(), 2u);
}

}  // namespace
}  // namespace sentinel
