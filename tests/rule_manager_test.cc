#include "rules/rule_manager.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/logging.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

class RuleManagerTest : public ::testing::Test {
 protected:
  RuleManagerTest()
      : clock_(testutil::Noon()), detector_(&clock_), manager_(&detector_) {
    event_ = *detector_.DefinePrimitive("e");
  }

  SimulatedClock clock_;
  EventDetector detector_;
  RuleManager manager_;
  EventId event_ = kInvalidEventId;
};

TEST_F(RuleManagerTest, ThenRunsWhenConditionsHold) {
  int then_count = 0, else_count = 0;
  Rule rule("r1", event_);
  rule.When("always", [](RuleContext&) { return true; })
      .Then("count", [&](RuleContext&) { ++then_count; })
      .Else("alt", [&](RuleContext&) { ++else_count; });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(then_count, 1);
  EXPECT_EQ(else_count, 0);
}

TEST_F(RuleManagerTest, ElseRunsWhenAnyConditionFails) {
  int then_count = 0, else_count = 0;
  Rule rule("r1", event_);
  rule.When("yes", [](RuleContext&) { return true; })
      .When("no", [](RuleContext&) { return false; })
      .Then("count", [&](RuleContext&) { ++then_count; })
      .Else("alt", [&](RuleContext&) { ++else_count; });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(then_count, 0);
  EXPECT_EQ(else_count, 1);
}

TEST_F(RuleManagerTest, ConditionsShortCircuitLeftToRight) {
  std::vector<int> evaluated;
  Rule rule("r1", event_);
  rule.When("c1",
            [&](RuleContext&) {
              evaluated.push_back(1);
              return false;
            })
      .When("c2", [&](RuleContext&) {
        evaluated.push_back(2);
        return true;
      });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(evaluated, (std::vector<int>{1}));
}

TEST_F(RuleManagerTest, EmptyWhenMeansTrue) {
  int then_count = 0;
  Rule rule("r1", event_);
  rule.Then("count", [&](RuleContext&) { ++then_count; });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(then_count, 1);
}

TEST_F(RuleManagerTest, PriorityOrdersFiring) {
  std::vector<std::string> order;
  auto make = [&](const std::string& name, int priority) {
    Rule rule(name, event_, Rule::Options{priority, true,
                                          RuleClass::kActivityControl,
                                          RuleGranularity::kLocalized});
    rule.Then("mark", [&order, name](RuleContext&) { order.push_back(name); });
    ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  };
  make("low", 0);
  make("high", 10);
  make("mid", 5);
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"high", "mid", "low"}));
}

TEST_F(RuleManagerTest, EqualPriorityFiresInInsertionOrder) {
  std::vector<std::string> order;
  for (const char* name : {"a", "b", "c"}) {
    Rule rule(name, event_);
    rule.Then("mark", [&order, name](RuleContext&) { order.push_back(name); });
    ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  }
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "c"}));
}

TEST_F(RuleManagerTest, DuplicateNameRejected) {
  ASSERT_TRUE(manager_.AddRule(Rule("r1", event_)).ok());
  EXPECT_TRUE(manager_.AddRule(Rule("r1", event_)).status().IsAlreadyExists());
}

TEST_F(RuleManagerTest, UnknownEventRejected) {
  EXPECT_FALSE(manager_.AddRule(Rule("r1", 999)).ok());
}

TEST_F(RuleManagerTest, DisabledRuleDoesNotFire) {
  int count = 0;
  Rule rule("r1", event_);
  rule.Then("count", [&](RuleContext&) { ++count; });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(manager_.SetEnabled("r1", false).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(count, 0);
  ASSERT_TRUE(manager_.SetEnabled("r1", true).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(count, 1);
}

TEST_F(RuleManagerTest, RemoveRuleStopsFiring) {
  int count = 0;
  Rule rule("r1", event_);
  rule.Then("count", [&](RuleContext&) { ++count; });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(manager_.RemoveRule("r1").ok());
  EXPECT_TRUE(manager_.RemoveRule("r1").IsNotFound());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(count, 0);
  EXPECT_EQ(manager_.rule_count(), 0u);
}

TEST_F(RuleManagerTest, RemoveIfByPredicate) {
  for (const char* name : {"AAR.PC", "AAR.AM", "CC.PC"}) {
    ASSERT_TRUE(manager_.AddRule(Rule(name, event_)).ok());
  }
  const int removed = manager_.RemoveIf([](const Rule& rule) {
    return rule.name().rfind("AAR.", 0) == 0;
  });
  EXPECT_EQ(removed, 2);
  EXPECT_EQ(manager_.rule_count(), 1u);
  EXPECT_TRUE(manager_.Find("CC.PC").ok());
}

TEST_F(RuleManagerTest, DisableIfCountsOnlyEnabled) {
  ASSERT_TRUE(manager_.AddRule(Rule("a", event_)).ok());
  ASSERT_TRUE(manager_.AddRule(Rule("b", event_)).ok());
  ASSERT_TRUE(manager_.SetEnabled("b", false).ok());
  const int disabled = manager_.DisableIf([](const Rule&) { return true; });
  EXPECT_EQ(disabled, 1);
}

TEST_F(RuleManagerTest, DecisionPlumbedToContext) {
  Decision decision;
  Rule rule("r1", event_);
  rule.When("fail", [](RuleContext&) { return false; })
      .Else("deny", [](RuleContext& c) {
        ASSERT_NE(c.decision, nullptr);
        c.decision->Deny("r1", "Access Denied Cannot Activate");
      });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  {
    ScopedDecision scope(&manager_, &decision);
    ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  }
  EXPECT_TRUE(decision.decided);
  EXPECT_FALSE(decision.allowed);
  EXPECT_EQ(decision.rule, "r1");
  EXPECT_EQ(decision.reason, "Access Denied Cannot Activate");
}

TEST_F(RuleManagerTest, NullDecisionWhenNoneInstalled) {
  bool saw_null = false;
  Rule rule("r1", event_);
  rule.Then("check", [&](RuleContext& c) { saw_null = (c.decision == nullptr); });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_TRUE(saw_null);
}

TEST_F(RuleManagerTest, CascadedRulesViaRaisedEvents) {
  const EventId second = *detector_.DefinePrimitive("second");
  std::vector<std::string> order;
  Rule first("first", event_);
  first.Then("raise second", [&](RuleContext& c) {
    order.push_back("first");
    (void)c.detector->Raise(second, {});
  });
  ASSERT_TRUE(manager_.AddRule(std::move(first)).ok());
  Rule chained("chained", second);
  chained.Then("mark", [&](RuleContext&) { order.push_back("chained"); });
  ASSERT_TRUE(manager_.AddRule(std::move(chained)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(order, (std::vector<std::string>{"first", "chained"}));
}

TEST_F(RuleManagerTest, CascadeBudgetStopsRunawayLoops) {
  CapturingLogSink sink;
  manager_.set_cascade_limit(16);
  manager_.ResetCascadeBudget();
  // A self-triggering rule: fires on e and raises e again.
  Rule rule("loop", event_);
  rule.Then("re-raise",
            [&](RuleContext& c) { (void)c.detector->Raise(event_, {}); });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {}).ok());
  EXPECT_EQ(manager_.total_fired(), 16u);
  EXPECT_GE(manager_.dropped_firings(), 1u);
  EXPECT_TRUE(sink.Contains("cascade budget exhausted"));
}

TEST_F(RuleManagerTest, StatsCountFirings) {
  Rule rule("r1", event_);
  rule.When("coin", [](RuleContext& c) { return c.ParamBool("heads"); });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_.Raise(event_, {{"heads", Value(true)}}).ok());
  ASSERT_TRUE(detector_.Raise(event_, {{"heads", Value(false)}}).ok());
  const Rule* rule_ptr = *manager_.Find("r1");
  EXPECT_EQ(rule_ptr->fired_count(), 2u);
  EXPECT_EQ(rule_ptr->condition_true_count(), 1u);
  EXPECT_EQ(manager_.total_fired(), 2u);
}

TEST_F(RuleManagerTest, DescribeRendersOwteListing) {
  Rule rule("AAR.R1", event_,
            Rule::Options{0, true, RuleClass::kActivityControl,
                          RuleGranularity::kLocalized});
  rule.When("user IN userL", [](RuleContext&) { return true; })
      .Then("addSessionRoleR1(sessionId)", [](RuleContext&) {})
      .Else("raise error \"Access Denied Cannot Activate\"",
            [](RuleContext&) {});
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  const std::string pool = manager_.DescribePool();
  EXPECT_NE(pool.find("RULE [ AAR.R1"), std::string::npos);
  EXPECT_NE(pool.find("ON    e"), std::string::npos);
  EXPECT_NE(pool.find("WHEN  user IN userL"), std::string::npos);
  EXPECT_NE(pool.find("THEN  <addSessionRoleR1(sessionId)>"),
            std::string::npos);
  EXPECT_NE(pool.find("ELSE"), std::string::npos);
}

TEST_F(RuleManagerTest, CountByClass) {
  ASSERT_TRUE(manager_
                  .AddRule(Rule("adm", event_,
                                Rule::Options{0, true,
                                              RuleClass::kAdministrative,
                                              RuleGranularity::kGlobalized}))
                  .ok());
  ASSERT_TRUE(manager_.AddRule(Rule("act", event_)).ok());
  EXPECT_EQ(manager_.CountByClass(RuleClass::kAdministrative), 1);
  EXPECT_EQ(manager_.CountByClass(RuleClass::kActivityControl), 1);
  EXPECT_EQ(manager_.CountByClass(RuleClass::kActiveSecurity), 0);
}

TEST_F(RuleManagerTest, RuleParamAccessors) {
  std::string user;
  int64_t count = 0;
  bool flag = false, has = false;
  Rule rule("r1", event_);
  rule.Then("read", [&](RuleContext& c) {
    user = c.ParamString("user");
    count = c.ParamInt("count");
    flag = c.ParamBool("flag");
    has = c.HasParam("user") && !c.HasParam("absent");
  });
  ASSERT_TRUE(manager_.AddRule(std::move(rule)).ok());
  ASSERT_TRUE(detector_
                  .Raise(event_, {{"user", Value("bob")},
                                  {"count", Value(int64_t{5})},
                                  {"flag", Value(true)}})
                  .ok());
  EXPECT_EQ(user, "bob");
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(flag);
  EXPECT_TRUE(has);
}

}  // namespace
}  // namespace sentinel
