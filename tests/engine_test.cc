#include "core/engine.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// Fixture loading enterprise XYZ into a rule-driven engine.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : clock_(testutil::Noon()), engine_(&clock_) {}

  void Load(const Policy& policy) {
    ASSERT_TRUE(engine_.LoadPolicy(policy).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

TEST_F(EngineTest, LoadPolicyInstantiatesBaseState) {
  Load(testutil::EnterpriseXyzPolicy());
  EXPECT_TRUE(engine_.rbac().db().HasUser("alice"));
  EXPECT_TRUE(engine_.rbac().db().HasRole("PM"));
  EXPECT_TRUE(engine_.rbac().db().IsAssigned("alice", "PM"));
  EXPECT_TRUE(engine_.rbac().hierarchy().Dominates("PM", "Clerk"));
  EXPECT_TRUE(engine_.rbac().ssd().GetSet("SoD1").ok());
  EXPECT_GT(engine_.rule_manager().rule_count(), 0u);
}

TEST_F(EngineTest, LoadPolicyRejectsSecondLoad) {
  Load(testutil::EnterpriseXyzPolicy());
  EXPECT_TRUE(engine_.LoadPolicy(testutil::EnterpriseXyzPolicy())
                  .IsFailedPrecondition());
}

TEST_F(EngineTest, LoadPolicyRejectsInvalidPolicy) {
  Policy bad("bad");
  RoleSpec role;
  role.name = "A";
  role.juniors.insert("Ghost");
  ASSERT_TRUE(bad.AddRole(std::move(role)).ok());
  EXPECT_FALSE(engine_.LoadPolicy(bad).ok());
}

TEST_F(EngineTest, SessionLifecycleViaAdmRules) {
  Load(testutil::EnterpriseXyzPolicy());
  Decision d = engine_.CreateSession("alice", "s1");
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.rule, "ADM.createSession");
  EXPECT_TRUE(engine_.rbac().db().HasSession("s1"));

  // Duplicate session id and unknown user are denied by the ELSE branch.
  EXPECT_FALSE(engine_.CreateSession("alice", "s1").allowed);
  Decision ghost = engine_.CreateSession("ghost", "s2");
  EXPECT_FALSE(ghost.allowed);
  EXPECT_EQ(ghost.reason, "Cannot Create Session");

  EXPECT_TRUE(engine_.DeleteSession("s1").allowed);
  EXPECT_FALSE(engine_.rbac().db().HasSession("s1"));
  Decision gone = engine_.DeleteSession("s1");
  EXPECT_FALSE(gone.allowed);
  EXPECT_EQ(gone.reason, "No Such Session");
}

TEST_F(EngineTest, ActivationViaAarRuleCore) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  Decision d = engine_.AddActiveRole("carol", "s1", "Clerk");
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.rule, "AAR.Clerk");
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("s1", "Clerk"));
}

TEST_F(EngineTest, ActivationDeniedPaperStyle) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  // carol is not assigned/authorized for PM.
  Decision d = engine_.AddActiveRole("carol", "s1", "PM");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, "Access Denied Cannot Activate");
  // Session owned by someone else.
  ASSERT_TRUE(engine_.CreateSession("alice", "s2").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("carol", "s2", "Clerk").allowed);
  // Already active.
  ASSERT_TRUE(engine_.AddActiveRole("carol", "s1", "Clerk").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("carol", "s1", "Clerk").allowed);
}

TEST_F(EngineTest, ActivationThroughHierarchyUsesAar2) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  // alice assigned to PM only; PC activation flows through
  // checkAuthorization (AAR2 variant).
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("alice", "s1", "Clerk").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("alice", "s1", "AC").allowed);
}

TEST_F(EngineTest, UnknownRoleGetsDefaultDeny) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  Decision d = engine_.AddActiveRole("alice", "s1", "NoSuchRole");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, "Permission Denied");  // Fail-safe default.
  EXPECT_EQ(d.rule, "");
}

TEST_F(EngineTest, CheckAccessViaCaRule) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "s1", "PM").allowed);
  // Inherited permission (Clerk's read on ledger).
  Decision d = engine_.CheckAccess("s1", "read", "ledger");
  EXPECT_TRUE(d.allowed);
  EXPECT_EQ(d.rule, "CA.global");
  // Permission not held.
  Decision denied = engine_.CheckAccess("s1", "write", "ledger");
  EXPECT_FALSE(denied.allowed);
  EXPECT_EQ(denied.reason, "Permission Denied");
  // Unknown session / op / object.
  EXPECT_FALSE(engine_.CheckAccess("ghost", "read", "ledger").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "fly", "ledger").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "nothing").allowed);
}

TEST_F(EngineTest, CheckAccessRequiresActiveRole) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "ledger").allowed);
}

TEST_F(EngineTest, DropActiveRoleViaGlobRule) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("carol", "s1", "Clerk").allowed);
  EXPECT_TRUE(engine_.DropActiveRole("carol", "s1", "Clerk").allowed);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "Clerk"));
  Decision d = engine_.DropActiveRole("carol", "s1", "Clerk");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, "Cannot Deactivate");
}

TEST_F(EngineTest, AssignmentRespectsSsdInheritance) {
  Load(testutil::EnterpriseXyzPolicy());
  // alice (PM) inherits PC's SoD constraint: AC/AM are off limits.
  EXPECT_FALSE(engine_.AssignUser("alice", "AC").allowed);
  Decision d = engine_.AssignUser("alice", "AM");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, "Cannot Assign");
  // Clerk is fine.
  EXPECT_TRUE(engine_.AssignUser("alice", "Clerk").allowed);
  EXPECT_TRUE(engine_.rbac().db().IsAssigned("alice", "Clerk"));
}

TEST_F(EngineTest, DeassignDropsUnauthorizedActiveRoles) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("alice", "s1", "PC").allowed);
  EXPECT_TRUE(engine_.DeassignUser("alice", "PM").allowed);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "PC"));
  EXPECT_FALSE(engine_.DeassignUser("alice", "PM").allowed);
}

TEST_F(EngineTest, CardinalityRuleCompensates) {
  auto policy = PolicyParser::Parse(R"(
policy "card"
role Pres { cardinality: 1 }
user u1 { assign: Pres }
user u2 { assign: Pres }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u1", "s1").allowed);
  ASSERT_TRUE(engine_.CreateSession("u2", "s2").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u1", "s1", "Pres").allowed);
  Decision d = engine_.AddActiveRole("u2", "s2", "Pres");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.rule, "CC.Pres");
  EXPECT_EQ(d.reason, "Maximum Number of Roles Reached");
  // The compensating rule rolled the activation back.
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s2", "Pres"));
  EXPECT_EQ(engine_.rbac().db().ActiveSessionCount("Pres"), 1);
  // Freeing the slot admits the next activation.
  EXPECT_TRUE(engine_.DropActiveRole("u1", "s1", "Pres").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u2", "s2", "Pres").allowed);
}

TEST_F(EngineTest, UserActiveRoleCapSpecializedRule) {
  auto policy = PolicyParser::Parse(R"(
policy "cap"
role A {}
role B {}
role C {}
user jane { assign: A, B, C  max-active: 2 }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("jane", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("jane", "s1", "A").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("jane", "s1", "B").allowed);
  Decision d = engine_.AddActiveRole("jane", "s1", "C");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.rule, "UAC.jane");
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "C"));
  // The cap counts across sessions.
  ASSERT_TRUE(engine_.CreateSession("jane", "s2").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("jane", "s2", "C").allowed);
  EXPECT_TRUE(engine_.DropActiveRole("jane", "s1", "A").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("jane", "s2", "C").allowed);
}

TEST_F(EngineTest, DsdEnforcedThroughAar3) {
  auto policy = PolicyParser::Parse(R"(
policy "dsd"
role X {}
role Y {}
user u { assign: X, Y }
dsd D { roles: X, Y  n: 2 }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u", "s1", "X").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("u", "s1", "Y").allowed);
  // Second session is a separate DSD context.
  ASSERT_TRUE(engine_.CreateSession("u", "s2").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u", "s2", "Y").allowed);
}

TEST_F(EngineTest, PrerequisiteRolesGateActivation) {
  auto policy = PolicyParser::Parse(R"(
policy "prereq"
role Mentor {}
role Junior { prerequisite: Mentor }
user u { assign: Mentor, Junior }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  EXPECT_FALSE(engine_.AddActiveRole("u", "s1", "Junior").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u", "s1", "Mentor").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u", "s1", "Junior").allowed);
}

TEST_F(EngineTest, PrivacyAwareCheckAccess) {
  auto policy = PolicyParser::Parse(R"(
policy "privacy"
role Analyst { permission: read(crm.dat), read(open.dat) }
user u { assign: Analyst }
purpose business {}
purpose marketing { parent: business }
object-policy crm.dat { purposes: marketing }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "Analyst").allowed);
  // Governed object: purpose required and checked.
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "crm.dat", "marketing").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "crm.dat").allowed);
  EXPECT_FALSE(
      engine_.CheckAccess("s1", "read", "crm.dat", "business").allowed);
  // Ungoverned object: purpose irrelevant.
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "open.dat").allowed);
}

TEST_F(EngineTest, CfdEnableCouplesRoles) {
  auto policy = PolicyParser::Parse(R"(
policy "cfd"
role SysAdmin {}
role SysAudit {}
cfd { trigger: SysAdmin  companion: SysAudit }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.DisableRole("SysAdmin").allowed);
  ASSERT_TRUE(engine_.DisableRole("SysAudit").allowed);
  // Enabling the trigger brings up the companion too.
  Decision d = engine_.EnableRole("SysAdmin");
  EXPECT_TRUE(d.allowed);
  EXPECT_TRUE(engine_.role_state().IsEnabled("SysAdmin"));
  EXPECT_TRUE(engine_.role_state().IsEnabled("SysAudit"));
  // Disabling the companion pulls the trigger down (Rule 8 invariant).
  EXPECT_TRUE(engine_.DisableRole("SysAudit").allowed);
  EXPECT_FALSE(engine_.role_state().IsEnabled("SysAdmin"));
}

TEST_F(EngineTest, ThresholdDirectiveRaisesAlertAndDisablesRules) {
  CapturingLogSink sink;
  auto policy = PolicyParser::Parse(R"(
policy "sec"
role A { permission: read(x) }
user u { assign: A }
threshold guard { count: 3  window: 60s  disable: CA }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  // Three denials inside the window trip the alert.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(engine_.CheckAccess("s1", "write", "x").allowed);
  }
  EXPECT_EQ(engine_.security().alert_count(), 1);
  EXPECT_TRUE(sink.Contains("internal security alert [guard]"));
  // The CA rule was disabled: even valid accesses now fall to the
  // default deny (fail-safe).
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "A").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "x").allowed);
  const Rule* ca = *engine_.rule_manager().Find("CA.global");
  EXPECT_FALSE(ca->enabled());
}

TEST_F(EngineTest, TransactionActivationViaAperiodic) {
  auto policy = PolicyParser::Parse(R"(
policy "tx"
role Manager {}
role JuniorEmp {}
user mgr { assign: Manager }
user jr { assign: JuniorEmp }
transaction t { controller: Manager  dependent: JuniorEmp }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("mgr", "sm").allowed);
  ASSERT_TRUE(engine_.CreateSession("jr", "sj").allowed);
  // Before the Manager activates: the window is closed.
  Decision before = engine_.AddActiveRole("jr", "sj", "JuniorEmp");
  EXPECT_FALSE(before.allowed);
  EXPECT_EQ(before.reason, "Permission Denied");
  // Manager activates: window opens.
  ASSERT_TRUE(engine_.AddActiveRole("mgr", "sm", "Manager").allowed);
  Decision after = engine_.AddActiveRole("jr", "sj", "JuniorEmp");
  EXPECT_TRUE(after.allowed);
  EXPECT_EQ(after.rule, "ASEC.t.activate");
  // Manager deactivates: the junior falls with them.
  ASSERT_TRUE(engine_.DropActiveRole("mgr", "sm", "Manager").allowed);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("sj", "JuniorEmp"));
  // And new junior activations are denied again.
  EXPECT_FALSE(engine_.AddActiveRole("jr", "sj", "JuniorEmp").allowed);
}

TEST_F(EngineTest, TransactionSurvivesOneOfTwoManagers) {
  auto policy = PolicyParser::Parse(R"(
policy "tx2"
role Manager {}
role JuniorEmp {}
user m1 { assign: Manager }
user m2 { assign: Manager }
user jr { assign: JuniorEmp }
transaction t { controller: Manager  dependent: JuniorEmp }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("m1", "s1").allowed);
  ASSERT_TRUE(engine_.CreateSession("m2", "s2").allowed);
  ASSERT_TRUE(engine_.CreateSession("jr", "sj").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("m1", "s1", "Manager").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("m2", "s2", "Manager").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("jr", "sj", "JuniorEmp").allowed);
  // One manager leaves; another remains: the junior stays active and the
  // window stays open.
  ASSERT_TRUE(engine_.DropActiveRole("m1", "s1", "Manager").allowed);
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("sj", "JuniorEmp"));
  ASSERT_TRUE(engine_.DropActiveRole("jr", "sj", "JuniorEmp").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("jr", "sj", "JuniorEmp").allowed);
}

TEST_F(EngineTest, DeleteSessionDeactivatesRolesWithCascades) {
  auto policy = PolicyParser::Parse(R"(
policy "tx3"
role Manager {}
role JuniorEmp {}
user mgr { assign: Manager }
user jr { assign: JuniorEmp }
transaction t { controller: Manager  dependent: JuniorEmp }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("mgr", "sm").allowed);
  ASSERT_TRUE(engine_.CreateSession("jr", "sj").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("mgr", "sm", "Manager").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("jr", "sj", "JuniorEmp").allowed);
  // Deleting the manager's session cascades to the junior.
  ASSERT_TRUE(engine_.DeleteSession("sm").allowed);
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("sj", "JuniorEmp"));
}

TEST_F(EngineTest, ContextConstraintGatesActivation) {
  auto policy = PolicyParser::Parse(R"(
policy "ctx"
role WardNurse { context: location = hospital  permission: read(chart) }
user nina { assign: WardNurse }
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("nina", "s1").allowed);
  // Context unset: activation denied.
  EXPECT_FALSE(engine_.AddActiveRole("nina", "s1", "WardNurse").allowed);
  engine_.SetContext("location", "hospital");
  EXPECT_TRUE(engine_.AddActiveRole("nina", "s1", "WardNurse").allowed);
}

TEST_F(EngineTest, ContextChangeDeactivatesActiveRole) {
  auto policy = PolicyParser::Parse(R"(
policy "ctx"
role WardNurse { context: location = hospital }
user nina { assign: WardNurse }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  engine_.SetContext("location", "hospital");
  ASSERT_TRUE(engine_.CreateSession("nina", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("nina", "s1", "WardNurse").allowed);
  // The paper's §1 requirement: the constraint must hold until
  // deactivation — leaving the hospital deactivates the role.
  engine_.SetContext("location", "home");
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "WardNurse"));
  // Irrelevant context keys change nothing.
  engine_.SetContext("location", "hospital");
  ASSERT_TRUE(engine_.AddActiveRole("nina", "s1", "WardNurse").allowed);
  engine_.SetContext("network", "insecure");
  EXPECT_TRUE(engine_.rbac().db().IsSessionRoleActive("s1", "WardNurse"));
}

TEST_F(EngineTest, MultiKeyContextConjunction) {
  auto policy = PolicyParser::Parse(R"(
policy "ctx"
role SecureOp { context: location = office  context: network = secure }
user u { assign: SecureOp }
)");
  ASSERT_TRUE(policy.ok());
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  engine_.SetContext("location", "office");
  EXPECT_FALSE(engine_.AddActiveRole("u", "s1", "SecureOp").allowed);
  engine_.SetContext("network", "secure");
  EXPECT_TRUE(engine_.AddActiveRole("u", "s1", "SecureOp").allowed);
  engine_.SetContext("network", "insecure");
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "SecureOp"));
}

TEST_F(EngineTest, DeniedDecisionsExplainTheFailedCondition) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  // carol is not assigned to PC: the authorization check fails.
  Decision d = engine_.AddActiveRole("carol", "s1", "PC");
  ASSERT_FALSE(d.allowed);
  EXPECT_EQ(d.failed_condition, "checkAuthorizationPC(user) IS TRUE");
  // Unknown session: the session check fails first.
  Decision d2 = engine_.AddActiveRole("carol", "ghost", "Clerk");
  ASSERT_FALSE(d2.allowed);
  EXPECT_EQ(d2.failed_condition, "sessionId IN sessionL");
  // checkAccess without the permission: the permission scan fails.
  ASSERT_TRUE(engine_.AddActiveRole("carol", "s1", "Clerk").allowed);
  Decision d3 = engine_.CheckAccess("s1", "write", "ledger");
  ASSERT_FALSE(d3.allowed);
  EXPECT_EQ(d3.failed_condition,
            "ANY role IN getSessionRoles has checkPermissions");
  // Allowed decisions carry no explanation; default denials neither.
  Decision ok = engine_.CheckAccess("s1", "read", "ledger");
  EXPECT_TRUE(ok.allowed);
  EXPECT_TRUE(ok.failed_condition.empty());
  Decision dflt = engine_.AddActiveRole("carol", "s1", "NoSuchRole");
  EXPECT_FALSE(dflt.allowed);
  EXPECT_TRUE(dflt.failed_condition.empty());
}

TEST_F(EngineTest, DecisionStatsTracked) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("carol", "s1").allowed);
  (void)engine_.AddActiveRole("carol", "s1", "PM");  // Denied.
  EXPECT_EQ(engine_.decisions_made(), 2u);
  EXPECT_EQ(engine_.denials(), 1u);
}

TEST_F(EngineTest, ThresholdDirectiveDisablesRoles) {
  auto policy = PolicyParser::Parse(R"(
policy "sec2"
role A { permission: read(x) }
role Critical { permission: write(vault) }
user u { assign: A, Critical }
threshold guard { count: 2  window: 60s  disable-roles: Critical }
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  Load(*policy);
  ASSERT_TRUE(engine_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("u", "s1", "Critical").allowed);
  // Two denials trip the alert; the Critical role is disabled and its
  // active instance deactivated (the paper's §3 alert action).
  EXPECT_FALSE(engine_.CheckAccess("s1", "exec", "x").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "exec", "x").allowed);
  EXPECT_EQ(engine_.security().alert_count(), 1);
  EXPECT_FALSE(engine_.role_state().IsEnabled("Critical"));
  EXPECT_FALSE(engine_.rbac().db().IsSessionRoleActive("s1", "Critical"));
  EXPECT_FALSE(engine_.AddActiveRole("u", "s1", "Critical").allowed);
  // An administrator re-enables it after investigating.
  EXPECT_TRUE(engine_.EnableRole("Critical").allowed);
  EXPECT_TRUE(engine_.AddActiveRole("u", "s1", "Critical").allowed);
}

TEST_F(EngineTest, DecisionLogRecordsRecentDecisions) {
  Load(testutil::EnterpriseXyzPolicy());
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  (void)engine_.AddActiveRole("alice", "s1", "PM");
  (void)engine_.AddActiveRole("carol", "s1", "PM");  // Denied.
  const auto& log = engine_.decision_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].operation, "rbac.createSession");
  EXPECT_TRUE(log[0].decision.allowed);
  EXPECT_EQ(log[1].operation, "rbac.addActiveRole");
  EXPECT_TRUE(log[1].decision.allowed);
  EXPECT_FALSE(log[2].decision.allowed);
  EXPECT_EQ(log[2].decision.reason, "Access Denied Cannot Activate");
}

TEST_F(EngineTest, DecisionLogCapacityBounds) {
  Load(testutil::EnterpriseXyzPolicy());
  engine_.set_decision_log_capacity(3);
  ASSERT_TRUE(engine_.CreateSession("alice", "s1").allowed);
  for (int i = 0; i < 10; ++i) {
    (void)engine_.CheckAccess("s1", "read", "ledger");
  }
  EXPECT_EQ(engine_.decision_log().size(), 3u);
  engine_.set_decision_log_capacity(0);
  EXPECT_TRUE(engine_.decision_log().empty());
  (void)engine_.CheckAccess("s1", "read", "ledger");
  EXPECT_TRUE(engine_.decision_log().empty());
}

TEST_F(EngineTest, RulePoolClassification) {
  Load(testutil::EnterpriseXyzPolicy());
  const RuleManager& rules = engine_.rule_manager();
  EXPECT_GT(rules.CountByClass(RuleClass::kAdministrative), 0);
  EXPECT_GT(rules.CountByClass(RuleClass::kActivityControl), 0);
  // XYZ has no active-security directives.
  EXPECT_EQ(rules.CountByClass(RuleClass::kActiveSecurity), 0);
  // One AAR per role.
  for (const char* role : {"PM", "PC", "AM", "AC", "Clerk"}) {
    EXPECT_TRUE(rules.Find(std::string("AAR.") + role).ok()) << role;
  }
}

}  // namespace
}  // namespace sentinel
