#include "rbac/sod.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

class SodStoreTest : public ::testing::Test {
 protected:
  SodStoreTest() : store_("SSD") {}
  SodStore store_;
};

TEST_F(SodStoreTest, CreateValidations) {
  EXPECT_TRUE(store_.CreateSet("", {"A", "B"}, 2).IsInvalidArgument());
  EXPECT_TRUE(store_.CreateSet("s", {"A", "B"}, 1).IsInvalidArgument());
  EXPECT_TRUE(store_.CreateSet("s", {"A"}, 2).IsInvalidArgument());
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B"}, 2).ok());
  EXPECT_TRUE(store_.CreateSet("s", {"C", "D"}, 2).IsAlreadyExists());
}

TEST_F(SodStoreTest, SatisfiesCountsMembership) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B", "C"}, 2).ok());
  EXPECT_TRUE(store_.Satisfies({}));
  EXPECT_TRUE(store_.Satisfies({"A"}));
  EXPECT_TRUE(store_.Satisfies({"A", "X", "Y"}));
  EXPECT_FALSE(store_.Satisfies({"A", "B"}));
  EXPECT_FALSE(store_.Satisfies({"A", "B", "C"}));
}

TEST_F(SodStoreTest, CardinalityThreeAllowsPairs) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B", "C"}, 3).ok());
  EXPECT_TRUE(store_.Satisfies({"A", "B"}));
  EXPECT_FALSE(store_.Satisfies({"A", "B", "C"}));
}

TEST_F(SodStoreTest, FirstViolatedNamesTheSet) {
  ASSERT_TRUE(store_.CreateSet("s1", {"A", "B"}, 2).ok());
  ASSERT_TRUE(store_.CreateSet("s2", {"C", "D"}, 2).ok());
  EXPECT_EQ(store_.FirstViolated({"C", "D"}), "s2");
  EXPECT_EQ(store_.FirstViolated({"A", "C"}), "");
}

TEST_F(SodStoreTest, MultipleSetsAllChecked) {
  ASSERT_TRUE(store_.CreateSet("s1", {"A", "B"}, 2).ok());
  ASSERT_TRUE(store_.CreateSet("s2", {"B", "C"}, 2).ok());
  EXPECT_FALSE(store_.Satisfies({"B", "C"}));
  EXPECT_FALSE(store_.Satisfies({"A", "B"}));
  EXPECT_TRUE(store_.Satisfies({"A", "C"}));
}

TEST_F(SodStoreTest, AddAndRemoveMembers) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B"}, 2).ok());
  ASSERT_TRUE(store_.AddRoleMember("s", "C").ok());
  EXPECT_TRUE(store_.AddRoleMember("s", "C").IsAlreadyExists());
  EXPECT_TRUE(store_.AddRoleMember("ghost", "C").IsNotFound());
  EXPECT_FALSE(store_.Satisfies({"A", "C"}));
  ASSERT_TRUE(store_.DeleteRoleMember("s", "C").ok());
  EXPECT_TRUE(store_.Satisfies({"A", "C"}));
  // Shrinking below the cardinality is rejected.
  EXPECT_TRUE(store_.DeleteRoleMember("s", "A").IsConstraintViolation());
}

TEST_F(SodStoreTest, SetCardinalityValidated) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B", "C"}, 2).ok());
  ASSERT_TRUE(store_.SetCardinality("s", 3).ok());
  EXPECT_TRUE(store_.Satisfies({"A", "B"}));
  EXPECT_TRUE(store_.SetCardinality("s", 4).IsInvalidArgument());
  EXPECT_TRUE(store_.SetCardinality("s", 1).IsInvalidArgument());
  EXPECT_TRUE(store_.SetCardinality("ghost", 2).IsNotFound());
}

TEST_F(SodStoreTest, EraseRoleDropsUndersizedSets) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B"}, 2).ok());
  store_.EraseRole("A");
  EXPECT_FALSE(store_.GetSet("s").ok());
  EXPECT_TRUE(store_.Satisfies({"B", "A"}));
}

TEST_F(SodStoreTest, EraseRoleKeepsLargeEnoughSets) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B", "C"}, 2).ok());
  store_.EraseRole("A");
  ASSERT_TRUE(store_.GetSet("s").ok());
  EXPECT_FALSE(store_.Satisfies({"B", "C"}));
}

TEST_F(SodStoreTest, SetsContainingAndRoleConstrained) {
  ASSERT_TRUE(store_.CreateSet("s1", {"A", "B"}, 2).ok());
  ASSERT_TRUE(store_.CreateSet("s2", {"A", "C"}, 2).ok());
  EXPECT_EQ(store_.SetsContaining("A").size(), 2u);
  EXPECT_EQ(store_.SetsContaining("B").size(), 1u);
  EXPECT_TRUE(store_.RoleConstrained("A"));
  EXPECT_FALSE(store_.RoleConstrained("Z"));
  EXPECT_EQ(store_.AllSets().size(), 2u);
}

TEST_F(SodStoreTest, DeleteSet) {
  ASSERT_TRUE(store_.CreateSet("s", {"A", "B"}, 2).ok());
  ASSERT_TRUE(store_.DeleteSet("s").ok());
  EXPECT_TRUE(store_.DeleteSet("s").IsNotFound());
  EXPECT_TRUE(store_.Satisfies({"A", "B"}));
  EXPECT_FALSE(store_.RoleConstrained("A"));
}

}  // namespace
}  // namespace sentinel
