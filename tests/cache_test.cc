#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/decision_cache.h"
#include "core/engine.h"
#include "core/policy_parser.h"
#include "service/authorization_service.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// A compact policy exercising every invalidation edge the decision cache
/// must honour: a plain role (Doctor), a GTRBAC shift role with a periodic
/// disable boundary (DayDoctor, 08:00-16:00), and a dynamic-SoD pair
/// (Auditor/Biller) whose conflicting activations reshuffle session state.
Policy CacheLabPolicy() {
  const char* text = R"(
policy "cachelab"

role Doctor { permission: read(chart), write(chart) }
role Nurse { permission: read(chart) }
role DayDoctor { enable: 08:00:00 - 16:00:00  permission: read(ward.log) }
role Auditor { permission: read(audit.log) }
role Biller { permission: write(invoice) }

dsd BooksSoD { roles: Auditor, Biller  n: 2 }

user dave { assign: Doctor, DayDoctor, Auditor, Biller }
user nina { assign: Nurse }
)";
  auto policy = PolicyParser::Parse(text);
  EXPECT_TRUE(policy.ok()) << policy.status().message();
  return *policy;
}

/// CacheLabPolicy plus an active-security denial threshold. The SEC rule
/// consumes rbac.accessDenied, so negative verdicts must NOT be cached
/// (a replayed deny would starve the denial-burst counter).
Policy ThresholdPolicy() {
  const char* text = R"(
policy "cachelab-sec"

role Doctor { permission: read(chart) }

user dave { assign: Doctor }

threshold burst { count: 3  window: 1m  disable-roles: Doctor }
)";
  auto policy = PolicyParser::Parse(text);
  EXPECT_TRUE(policy.ok()) << policy.status().message();
  return *policy;
}

class CacheTest : public ::testing::Test {
 protected:
  CacheTest() : clock_(testutil::Noon()), engine_(&clock_) {
    engine_.ConfigureDecisionCache(256);
  }

  void Load(const Policy& policy) {
    ASSERT_TRUE(engine_.LoadPolicy(policy).ok());
  }

  SimulatedClock clock_;
  AuthorizationEngine engine_;
};

// ------------------------------------------------------------ Hot path

TEST_F(CacheTest, RepeatCheckHitsCache) {
  Load(CacheLabPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Doctor").allowed);

  const Decision first = engine_.CheckAccess("s1", "read", "chart");
  EXPECT_TRUE(first.allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 0u);
  EXPECT_EQ(engine_.decision_cache_misses(), 1u);

  const Decision second = engine_.CheckAccess("s1", "read", "chart");
  EXPECT_TRUE(second.allowed);
  EXPECT_EQ(second.rule, first.rule);
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);
  EXPECT_EQ(engine_.decision_cache_misses(), 1u);
}

TEST_F(CacheTest, NegativeVerdictCachedAndFlipsOnActivation) {
  Load(CacheLabPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);

  // No role active: deny, cached, replayed.
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "chart").allowed);
  const Decision replay = engine_.CheckAccess("s1", "read", "chart");
  EXPECT_FALSE(replay.allowed);
  EXPECT_EQ(replay.reason, "Permission Denied");
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);

  // Activation bumps the session generation: the cached deny dies lazily.
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Doctor").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_GE(engine_.decision_cache_stale(), 1u);
}

// ----------------------------------------------- Invalidation edges

/// Satellite edge (a): a cached ALLOW must flip when the role is disabled
/// by its GTRBAC enabling window closing at the periodic boundary.
TEST_F(CacheTest, CachedAllowFlipsAfterPeriodicDisableBoundary) {
  Load(CacheLabPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "DayDoctor").allowed);

  // Noon: inside the 08:00-16:00 shift. Warm the cache.
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "ward.log").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "ward.log").allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);

  // Cross 16:00: SH.DayDoctor.off disables the role and deactivates every
  // instance, bumping the session generation. No explicit flush happens —
  // the stale entry must die on its next lookup.
  engine_.AdvanceTo(testutil::Noon() + 4 * kHour + kSecond);
  const Decision after = engine_.CheckAccess("s1", "read", "ward.log");
  EXPECT_FALSE(after.allowed);
  EXPECT_EQ(after.reason, "Permission Denied");
  EXPECT_GE(engine_.decision_cache_stale(), 1u);
}

/// Satellite edge (b): activation churn forced by a dynamic-SoD conflict
/// must invalidate the session's cached verdicts — and a *denied*
/// conflicting activation must leave them untouched.
TEST_F(CacheTest, CachedVerdictsFlipAcrossDsodConflictActivation) {
  Load(CacheLabPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Auditor").allowed);

  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "audit.log").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "invoice").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "audit.log").allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);

  // The DSoD conflict: Biller while Auditor is active. Denied by AAR, and
  // the denial must not corrupt the cache — the allow still replays.
  EXPECT_FALSE(engine_.AddActiveRole("dave", "s1", "Biller").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "audit.log").allowed);

  // Resolve the conflict the legal way: drop Auditor, activate Biller.
  // Both cached verdicts (audit ALLOW, invoice DENY) must flip.
  ASSERT_TRUE(engine_.DropActiveRole("dave", "s1", "Auditor").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Biller").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "read", "audit.log").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "write", "invoice").allowed);
  EXPECT_GE(engine_.decision_cache_stale(), 2u);
}

/// Satellite edge (c): dropping the session role kills its cached ALLOW.
TEST_F(CacheTest, CachedAllowFlipsAfterSessionRoleDeactivation) {
  Load(CacheLabPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Doctor").allowed);

  EXPECT_TRUE(engine_.CheckAccess("s1", "write", "chart").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "write", "chart").allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);

  ASSERT_TRUE(engine_.DropActiveRole("dave", "s1", "Doctor").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "chart").allowed);
  EXPECT_GE(engine_.decision_cache_stale(), 1u);
}

/// Satellite edge (d): an admin broadcast bumps the policy epoch on every
/// shard, so cached verdicts re-validate — and flip when the broadcast
/// removed the authorization they relied on.
TEST(CacheServiceTest, CachedAllowFlipsAfterAdminBroadcast) {
  ServiceConfig config;
  config.num_shards = 2;
  config.start_time = testutil::Noon();
  config.decision_cache_capacity = 256;
  auto service_or = AuthorizationService::Create(config);
  ASSERT_TRUE(service_or.ok());
  AuthorizationService& service = **service_or;
  ASSERT_TRUE(service.LoadPolicy(CacheLabPolicy()).ok());

  ASSERT_TRUE(service.CreateSession("dave", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("dave", "s1", "Doctor").ok());

  AccessRequest request;
  request.user = "dave";
  request.session = "s1";
  request.operation = "read";
  request.object = "chart";
  EXPECT_TRUE(service.CheckAccess(request).allowed);
  EXPECT_TRUE(service.CheckAccess(request).allowed);
  ServiceStats warm = service.Stats();
  EXPECT_GE(warm.cache_hits, 1u);

  // An unrelated admin broadcast: the stamp's epoch component moves, the
  // entry re-validates as stale, but the verdict itself is unchanged.
  EXPECT_TRUE(service.AssignUser("nina", "Doctor").ok());
  EXPECT_TRUE(service.CheckAccess(request).allowed);
  ServiceStats after_unrelated = service.Stats();
  EXPECT_GE(after_unrelated.cache_stale, warm.cache_stale + 1);

  // A broadcast that strips the authorization: the cached ALLOW must flip.
  EXPECT_TRUE(service.DeassignUser("dave", "Doctor").ok());
  const AccessDecision denied = service.CheckAccess(request);
  EXPECT_FALSE(denied.allowed);
  EXPECT_EQ(denied.reason, "Permission Denied");
}

// ------------------------------------------------------ Safety gates

TEST_F(CacheTest, ThresholdPolicyDisablesNegativeCachingOnly) {
  Load(ThresholdPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);

  // Denials feed the SEC burst counter, so they must dispatch every time:
  // two identical denies, zero hits.
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "chart").allowed);
  EXPECT_FALSE(engine_.CheckAccess("s1", "write", "chart").allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 0u);

  // Positive verdicts raise nothing, so they still cache.
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Doctor").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);
}

/// Regression from the policed differential arm: a *throttle-only*
/// threshold (no alert actions) also consumes rbac.accessDenied, so it
/// must gate negative caching exactly like an alert threshold. A replayed
/// (cached) deny would starve the per-principal denial window and the
/// admission throttle would never trip.
TEST_F(CacheTest, ThrottleOnlyThresholdAlsoDisablesNegativeCaching) {
  const char* text = R"(
policy "cachelab-throttle"

role Doctor { permission: read(chart) }

user dave { assign: Doctor }

threshold slowdown { count: 3  window: 1m  throttle-rate: 0.5 }
)";
  auto policy = PolicyParser::Parse(text);
  ASSERT_TRUE(policy.ok()) << policy.status().message();
  Load(*policy);

  std::vector<std::string> throttled;
  engine_.set_throttle_sink(
      [&throttled](const std::string& user, double rate_per_s,
                   int64_t burst) { throttled.push_back(user); });
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);

  // Three identical denials: each must dispatch (zero negative-cache
  // hits) so each feeds the keyed window; the third trips the throttle.
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(engine_.CheckAccess("s1", "write", "chart").allowed) << i;
  }
  EXPECT_EQ(engine_.decision_cache_hits(), 0u);
  ASSERT_EQ(throttled.size(), 1u);
  EXPECT_EQ(throttled[0], "dave");

  // Positive verdicts still cache — gating is denial-only.
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Doctor").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_TRUE(engine_.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 1u);
}

TEST_F(CacheTest, PurposeCarryingRequestsBypassTheCache) {
  Load(CacheLabPolicy());
  ASSERT_TRUE(engine_.CreateSession("dave", "s1").allowed);
  ASSERT_TRUE(engine_.AddActiveRole("dave", "s1", "Doctor").allowed);

  // The purpose string is not part of the packed key, so purpose-carrying
  // requests must neither hit nor fill.
  const Decision first = engine_.CheckAccess("s1", "read", "chart", "care");
  const Decision second = engine_.CheckAccess("s1", "read", "chart", "care");
  EXPECT_EQ(first.allowed, second.allowed);
  EXPECT_EQ(engine_.decision_cache_hits(), 0u);
  EXPECT_EQ(engine_.decision_cache_misses(), 0u);
  EXPECT_EQ(engine_.decision_cache().size(), 0u);
}

TEST_F(CacheTest, DisabledCacheCountsNothing) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);  // No ConfigureDecisionCache call.
  ASSERT_TRUE(engine.LoadPolicy(CacheLabPolicy()).ok());
  ASSERT_TRUE(engine.CreateSession("dave", "s1").allowed);
  ASSERT_TRUE(engine.AddActiveRole("dave", "s1", "Doctor").allowed);
  EXPECT_TRUE(engine.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_TRUE(engine.CheckAccess("s1", "read", "chart").allowed);
  EXPECT_EQ(engine.decision_cache_hits(), 0u);
  EXPECT_EQ(engine.decision_cache_misses(), 0u);
}

// ------------------------------------------------- DecisionCache unit

TEST(DecisionCacheUnitTest, PackKeyRejectsOverflowingSymbols) {
  EXPECT_TRUE(DecisionCache::PackKey(Symbol(1), Symbol(2), Symbol(3))
                  .has_value());
  EXPECT_FALSE(DecisionCache::PackKey(Symbol(1u << 24), Symbol(2), Symbol(3))
                   .has_value());
  EXPECT_FALSE(DecisionCache::PackKey(Symbol(1), Symbol(1u << 16), Symbol(3))
                   .has_value());
  EXPECT_FALSE(DecisionCache::PackKey(Symbol(1), Symbol(2), Symbol(1u << 24))
                   .has_value());
}

TEST(DecisionCacheUnitTest, LookupFillStaleRoundTrip) {
  DecisionCache cache;
  cache.Configure(64);
  const uint64_t key = *DecisionCache::PackKey(Symbol(7), Symbol(8), Symbol(9));
  DecisionCache::Stamp stamp{1, 2, 3, 4};

  DecisionCache::Verdict verdict{};
  EXPECT_EQ(cache.Lookup(key, stamp, &verdict), DecisionCache::Outcome::kMiss);

  cache.Fill(key, stamp, {true, true});
  EXPECT_EQ(cache.Lookup(key, stamp, &verdict), DecisionCache::Outcome::kHit);
  EXPECT_TRUE(verdict.allowed);

  // Any stamp component moving makes the entry stale.
  DecisionCache::Stamp moved = stamp;
  moved.session += 1;
  EXPECT_EQ(cache.Lookup(key, moved, &verdict),
            DecisionCache::Outcome::kStale);

  // Refill under the new stamp revives the slot in place.
  cache.Fill(key, moved, {false, true});
  EXPECT_EQ(cache.Lookup(key, moved, &verdict), DecisionCache::Outcome::kHit);
  EXPECT_FALSE(verdict.allowed);
  EXPECT_EQ(cache.size(), 1u);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.Lookup(key, moved, &verdict), DecisionCache::Outcome::kMiss);
}

TEST(DecisionCacheUnitTest, EvictionKeepsTableBounded) {
  DecisionCache cache;
  cache.Configure(8);
  const DecisionCache::Stamp stamp{1, 1, 1, 1};
  for (uint32_t i = 1; i <= 100; ++i) {
    const uint64_t key =
        *DecisionCache::PackKey(Symbol(i), Symbol(1), Symbol(1));
    cache.Fill(key, stamp, {true, true});
    // The just-filled key is always findable (round-robin victims never
    // evict the entry being inserted).
    DecisionCache::Verdict verdict{};
    EXPECT_EQ(cache.Lookup(key, stamp, &verdict),
              DecisionCache::Outcome::kHit)
        << "key " << i;
  }
  EXPECT_LE(cache.size(), 8u);
}

// ------------------------------------- Shared mirror (zero-hop) unit

TEST(DecisionCacheSharedViewTest, SharedLookupMirrorsFillsUnderTheFastStamp) {
  DecisionCache cache;
  cache.Configure(64);
  const uint64_t key = *DecisionCache::PackKey(Symbol(7), Symbol(8), Symbol(9));
  const DecisionCache::Stamp exact{1, 2, 3, 4};
  const DecisionCache::Stamp fast{1, 2, 10, 20};

  DecisionCache::Verdict verdict{};
  EXPECT_FALSE(cache.SharedLookup(key, &verdict));  // Empty mirror.

  cache.PublishCurrentStamp(fast);
  cache.Fill(key, exact, {true, true}, fast);
  ASSERT_TRUE(cache.SharedLookup(key, &verdict));
  EXPECT_TRUE(verdict.allowed);
  EXPECT_TRUE(verdict.by_rule);

  // A different key in the same table misses without a false positive.
  const uint64_t other =
      *DecisionCache::PackKey(Symbol(1), Symbol(2), Symbol(3));
  EXPECT_FALSE(cache.SharedLookup(other, &verdict));
}

TEST(DecisionCacheSharedViewTest, MovedCurrentStampKillsSharedHits) {
  DecisionCache cache;
  cache.Configure(64);
  const uint64_t key = *DecisionCache::PackKey(Symbol(7), Symbol(8), Symbol(9));
  DecisionCache::Stamp fast{1, 1, 1, 1};
  cache.PublishCurrentStamp(fast);
  cache.Fill(key, fast, {false, false}, fast);

  DecisionCache::Verdict verdict{};
  ASSERT_TRUE(cache.SharedLookup(key, &verdict));
  EXPECT_FALSE(verdict.allowed);
  EXPECT_FALSE(verdict.by_rule);

  // Any component of the published stamp moving makes every mirrored entry
  // filled under the old stamp unreadable — low word and high word alike.
  DecisionCache::Stamp moved = fast;
  moved.pool += 1;  // Low word.
  cache.PublishCurrentStamp(moved);
  EXPECT_FALSE(cache.SharedLookup(key, &verdict));
  moved = fast;
  moved.roles += 1;  // High word.
  cache.PublishCurrentStamp(moved);
  EXPECT_FALSE(cache.SharedLookup(key, &verdict));

  // Republishing the fill-time stamp revives the entry: staleness is a
  // property of the comparison, not the slot.
  cache.PublishCurrentStamp(fast);
  EXPECT_TRUE(cache.SharedLookup(key, &verdict));
}

TEST(DecisionCacheSharedViewTest, TornPublishMakesTheSlotUnreadable) {
  DecisionCache cache;
  cache.Configure(64);
  const uint64_t key = *DecisionCache::PackKey(Symbol(7), Symbol(8), Symbol(9));
  const DecisionCache::Stamp fast{1, 1, 1, 1};
  cache.PublishCurrentStamp(fast);
  cache.Fill(key, fast, {true, true}, fast);

  DecisionCache::Verdict verdict{};
  ASSERT_TRUE(cache.SharedLookup(key, &verdict));
  cache.BeginTornPublishForTest(key);  // Sequence left odd.
  EXPECT_FALSE(cache.SharedLookup(key, &verdict));
  cache.EndTornPublishForTest(key);
  EXPECT_TRUE(cache.SharedLookup(key, &verdict));
}

TEST(DecisionCacheSharedViewTest, ClearWipesTheMirrorToo) {
  DecisionCache cache;
  cache.Configure(64);
  const uint64_t key = *DecisionCache::PackKey(Symbol(7), Symbol(8), Symbol(9));
  const DecisionCache::Stamp fast{1, 1, 1, 1};
  cache.PublishCurrentStamp(fast);
  cache.Fill(key, fast, {true, true}, fast);

  DecisionCache::Verdict verdict{};
  ASSERT_TRUE(cache.SharedLookup(key, &verdict));
  cache.Clear();
  EXPECT_FALSE(cache.SharedLookup(key, &verdict));
}

TEST(DecisionCacheSharedViewTest, DisabledCacheHasNoSharedView) {
  DecisionCache cache;  // Never configured.
  EXPECT_FALSE(cache.shared_enabled());
  DecisionCache::Verdict verdict{};
  EXPECT_FALSE(cache.SharedLookup(42, &verdict));
  cache.PublishCurrentStamp({1, 1, 1, 1});  // Must not crash.
  cache.BeginTornPublishForTest(42);
  cache.EndTornPublishForTest(42);
}

// -------------------------------------- Satellite 6: config validation

TEST(ServiceConfigValidationTest, RejectsZeroShards) {
  ServiceConfig config;
  config.num_shards = 0;
  EXPECT_FALSE(AuthorizationService::ValidateConfig(config).ok());
  auto service = AuthorizationService::Create(config);
  EXPECT_FALSE(service.ok());
}

TEST(ServiceConfigValidationTest, RejectsNegativeShardsOtherThanAuto) {
  ServiceConfig config;
  config.num_shards = -2;
  EXPECT_FALSE(AuthorizationService::ValidateConfig(config).ok());
  config.num_shards = ServiceConfig::kAutoShards;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(config).ok());
}

TEST(ServiceConfigValidationTest, RejectsNonPowerOfTwoCacheCapacity) {
  ServiceConfig config;
  config.num_shards = 1;
  config.decision_cache_capacity = 3;
  EXPECT_FALSE(AuthorizationService::ValidateConfig(config).ok());
  auto rejected = AuthorizationService::Create(config);
  EXPECT_FALSE(rejected.ok());

  config.decision_cache_capacity = 0;  // Disabled is fine.
  EXPECT_TRUE(AuthorizationService::ValidateConfig(config).ok());
  config.decision_cache_capacity = 1024;
  EXPECT_TRUE(AuthorizationService::ValidateConfig(config).ok());
  auto accepted = AuthorizationService::Create(config);
  ASSERT_TRUE(accepted.ok());
  EXPECT_TRUE((*accepted)->init_status().ok());
}

TEST(ServiceConfigValidationTest, ConstructorDegradesLoudlyButStillServes) {
  ServiceConfig config;
  config.num_shards = 0;
  config.decision_cache_capacity = 12;  // Also invalid.
  config.start_time = testutil::Noon();
  AuthorizationService service(config);
  EXPECT_FALSE(service.init_status().ok());
  EXPECT_EQ(service.num_shards(), 1);

  // Degraded, not dead: the fallback single shard still decides.
  ASSERT_TRUE(service.LoadPolicy(CacheLabPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("dave", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("dave", "s1", "Doctor").ok());
  AccessRequest request;
  request.session = "s1";
  request.operation = "read";
  request.object = "chart";
  EXPECT_TRUE(service.CheckAccess(request).allowed);
  ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.cache_hits + stats.cache_misses, 0u);  // Cache off.
}

}  // namespace
}  // namespace sentinel
