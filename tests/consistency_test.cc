#include "core/consistency.h"

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"
#include "workload/policy_gen.h"

namespace sentinel {
namespace {

std::vector<ConsistencyIssue> CheckText(const std::string& text) {
  auto policy = PolicyParser::Parse(text);
  EXPECT_TRUE(policy.ok()) << policy.status().ToString();
  return CheckPolicyConsistency(*policy);
}

bool HasIssue(const std::vector<ConsistencyIssue>& issues,
              const std::string& code) {
  for (const ConsistencyIssue& issue : issues) {
    if (issue.code == code) return true;
  }
  return false;
}

TEST(ConsistencyTest, CleanPoliciesHaveNoIssues) {
  EXPECT_TRUE(
      CheckPolicyConsistency(testutil::EnterpriseXyzPolicy()).empty());
  const auto hospital = CheckPolicyConsistency(testutil::HospitalPolicy());
  EXPECT_TRUE(NoErrors(hospital));
}

TEST(ConsistencyTest, SsdAssignmentConflictIsError) {
  const auto issues = CheckText(R"(
policy "p"
role A {}
role B {}
ssd S { roles: A, B  n: 2 }
user u { assign: A, B }
)");
  EXPECT_TRUE(HasIssue(issues, "ssd-assignment-conflict"));
  EXPECT_FALSE(NoErrors(issues));
}

TEST(ConsistencyTest, SsdConflictThroughHierarchyDetected) {
  const auto issues = CheckText(R"(
policy "p"
role A {}
role B {}
role Senior { senior-of: A }
ssd S { roles: A, B  n: 2 }
user u { assign: Senior, B }
)");
  EXPECT_TRUE(HasIssue(issues, "ssd-assignment-conflict"));
}

TEST(ConsistencyTest, SsdHierarchyConflictIsWarning) {
  const auto issues = CheckText(R"(
policy "p"
role A {}
role B {}
role Super { senior-of: A, B }
ssd S { roles: A, B  n: 2 }
)");
  EXPECT_TRUE(HasIssue(issues, "ssd-hierarchy-conflict"));
  EXPECT_TRUE(NoErrors(issues));  // Unassignable but loadable.
}

TEST(ConsistencyTest, PrerequisiteCycleIsError) {
  const auto issues = CheckText(R"(
policy "p"
role A { prerequisite: B }
role B { prerequisite: A }
)");
  EXPECT_TRUE(HasIssue(issues, "prerequisite-cycle"));
  EXPECT_FALSE(NoErrors(issues));
}

TEST(ConsistencyTest, PrerequisiteDsdConflictIsError) {
  const auto issues = CheckText(R"(
policy "p"
role Mentor {}
role Junior { prerequisite: Mentor }
dsd D { roles: Mentor, Junior  n: 2 }
)");
  EXPECT_TRUE(HasIssue(issues, "prerequisite-dsd-conflict"));
}

TEST(ConsistencyTest, DsdSubsumedBySsdIsWarning) {
  const auto issues = CheckText(R"(
policy "p"
role A {}
role B {}
ssd S { roles: A, B  n: 2 }
dsd D { roles: A, B  n: 2 }
)");
  EXPECT_TRUE(HasIssue(issues, "dsd-subsumed-by-ssd"));
  EXPECT_TRUE(NoErrors(issues));
}

TEST(ConsistencyTest, DsdNotSubsumedWhenStricter) {
  // DSD n=2 over three roles, SSD n=3: a user CAN hold two of them.
  const auto issues = CheckText(R"(
policy "p"
role A {}
role B {}
role C {}
ssd S { roles: A, B, C  n: 3 }
dsd D { roles: A, B, C  n: 2 }
)");
  EXPECT_FALSE(HasIssue(issues, "dsd-subsumed-by-ssd"));
}

TEST(ConsistencyTest, VacuousCardinalityWarning) {
  const auto issues = CheckText(R"(
policy "p"
role A { cardinality: 5 }
user u { assign: A }
)");
  EXPECT_TRUE(HasIssue(issues, "cardinality-vacuous"));
}

TEST(ConsistencyTest, ReachableCardinalityClean) {
  const auto issues = CheckText(R"(
policy "p"
role A { cardinality: 2 }
user u1 { assign: A }
user u2 { assign: A }
user u3 { assign: A }
)");
  EXPECT_FALSE(HasIssue(issues, "cardinality-vacuous"));
}

TEST(ConsistencyTest, DurationExceedsShiftWarning) {
  const auto issues = CheckText(R"(
policy "p"
role Day { enable: 09:00:00 - 17:00:00  max-activation: 10h }
user u { assign: Day }
)");
  EXPECT_TRUE(HasIssue(issues, "duration-exceeds-shift"));
  const auto fine = CheckText(R"(
policy "p"
role Day { enable: 09:00:00 - 17:00:00  max-activation: 2h }
user u { assign: Day }
)");
  EXPECT_FALSE(HasIssue(fine, "duration-exceeds-shift"));
}

TEST(ConsistencyTest, TsodMemberWithShiftWarning) {
  const auto issues = CheckText(R"(
policy "p"
role Doctor { enable: 08:00:00 - 20:00:00 }
role Nurse {}
time-sod avail { kind: disabling  roles: Doctor, Nurse
                 window: 10:00:00 - 17:00:00 }
)");
  EXPECT_TRUE(HasIssue(issues, "tsod-member-has-shift"));
}

TEST(ConsistencyTest, UnusableTransactionWarning) {
  const auto issues = CheckText(R"(
policy "p"
role Manager {}
role JuniorEmp {}
transaction t { controller: Manager  dependent: JuniorEmp }
)");
  EXPECT_TRUE(HasIssue(issues, "transaction-unusable"));
}

TEST(ConsistencyTest, GeneratedPoliciesAreErrorFree) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    PolicyGenParams params;
    params.seed = seed;
    params.context_frac = 0.2;
    params.shift_frac = 0.2;
    const auto issues = CheckPolicyConsistency(GeneratePolicy(params));
    EXPECT_TRUE(NoErrors(issues)) << "seed " << seed;
  }
}

// ------------------------------------------- Generated-pool verification

TEST(PoolVerificationTest, XyzPoolIsExactlyExpected) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  const auto issues = VerifyGeneratedPool(engine);
  EXPECT_TRUE(issues.empty())
      << (issues.empty() ? std::string() : issues[0].ToString());
}

TEST(PoolVerificationTest, EveryFeatureFullPolicyVerifies) {
  auto policy = PolicyParser::Parse(R"(
policy "full"
role A { cardinality: 3  max-activation: 1h }
role B { senior-of: A  enable: 08:00:00 - 18:00:00 }
role C { prerequisite: A  context: location = office }
role SysAdmin {}
role SysAudit {}
role Manager {}
role JuniorEmp {}
user u { assign: A, Manager  max-active: 3  duration: A = 30m }
ssd S { roles: SysAdmin, JuniorEmp  n: 2 }
dsd D { roles: A, C  n: 2 }
cfd { trigger: SysAdmin  companion: SysAudit }
transaction t { controller: Manager  dependent: JuniorEmp }
threshold g { count: 5  window: 60s }
audit a { interval: 1h }
time-sod ts { kind: disabling  roles: SysAdmin, SysAudit
              window: 10:00:00 - 17:00:00 }
)");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(*policy).ok());
  const auto issues = VerifyGeneratedPool(engine);
  for (const ConsistencyIssue& issue : issues) {
    ADD_FAILURE() << issue.ToString();
  }
}

TEST(PoolVerificationTest, PoolStaysExactAcrossRegeneration) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  Policy base = testutil::EnterpriseXyzPolicy();
  ASSERT_TRUE(engine.LoadPolicy(base).ok());
  // Churn the policy a few times; the pool must track exactly.
  for (int round = 0; round < 3; ++round) {
    Policy updated = base;
    (*updated.MutableRole("PC"))->activation_cardinality = round + 1;
    (*updated.MutableRole("AM"))->max_activation = (round + 1) * kHour;
    ASSERT_TRUE(engine.ApplyPolicyUpdate(updated).ok());
    EXPECT_TRUE(VerifyGeneratedPool(engine).empty()) << "round " << round;
    ASSERT_TRUE(engine.ApplyPolicyUpdate(base).ok());
    EXPECT_TRUE(VerifyGeneratedPool(engine).empty()) << "round " << round;
  }
}

TEST(PoolVerificationTest, DetectsTamperedPool) {
  SimulatedClock clock(testutil::Noon());
  AuthorizationEngine engine(&clock);
  ASSERT_TRUE(engine.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  // Remove a required rule behind the generator's back.
  ASSERT_TRUE(engine.rule_manager().RemoveRule("AAR.PC").ok());
  auto issues = VerifyGeneratedPool(engine);
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].code, "missing-rule");
  EXPECT_NE(issues[0].detail.find("AAR.PC"), std::string::npos);
  // Add a rogue rule.
  ASSERT_TRUE(engine.rule_manager()
                  .AddRule(Rule("ROGUE.backdoor",
                                engine.events().check_access))
                  .ok());
  issues = VerifyGeneratedPool(engine);
  ASSERT_EQ(issues.size(), 2u);
  EXPECT_TRUE(issues[0].code == "unexpected-rule" ||
              issues[1].code == "unexpected-rule");
}

TEST(ConsistencyTest, IssueToString) {
  ConsistencyIssue issue{IssueSeverity::kError, "missing-rule", "x"};
  EXPECT_EQ(issue.ToString(), "ERROR [missing-rule] x");
  EXPECT_STREQ(IssueSeverityToString(IssueSeverity::kWarning), "WARNING");
}

}  // namespace
}  // namespace sentinel
