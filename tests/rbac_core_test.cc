#include "rbac/core_api.h"

#include <gtest/gtest.h>

namespace sentinel {
namespace {

/// Fixture building the paper's enterprise XYZ structure directly on the
/// NIST reference model.
class RbacSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    for (const char* role : {"Clerk", "PC", "PM", "AC", "AM"}) {
      ASSERT_TRUE(rbac_.AddRole(role).ok());
    }
    ASSERT_TRUE(rbac_.AddInheritance("PM", "PC").ok());
    ASSERT_TRUE(rbac_.AddInheritance("PC", "Clerk").ok());
    ASSERT_TRUE(rbac_.AddInheritance("AM", "AC").ok());
    ASSERT_TRUE(rbac_.AddInheritance("AC", "Clerk").ok());
    ASSERT_TRUE(rbac_.CreateSsdSet("SoD1", {"PC", "AC"}, 2).ok());
    for (const char* user : {"alice", "bob"}) {
      ASSERT_TRUE(rbac_.AddUser(user).ok());
    }
    ASSERT_TRUE(rbac_.GrantPermission("read", "ledger", "Clerk").ok());
    ASSERT_TRUE(rbac_.GrantPermission("write", "po", "PC").ok());
  }
  RbacSystem rbac_;
};

TEST_F(RbacSystemTest, AssignRespectsSsdThroughHierarchy) {
  // alice as PM is authorized for PC (junior): AM/AC become forbidden.
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  EXPECT_TRUE(rbac_.AssignUser("alice", "AC").IsConstraintViolation());
  EXPECT_TRUE(rbac_.AssignUser("alice", "AM").IsConstraintViolation());
  // Clerk is in neither SoD set: fine.
  EXPECT_TRUE(rbac_.AssignUser("alice", "Clerk").ok());
  // bob can take the approval side.
  EXPECT_TRUE(rbac_.AssignUser("bob", "AM").ok());
}

TEST_F(RbacSystemTest, DirectSsdViolationRejected) {
  ASSERT_TRUE(rbac_.AssignUser("bob", "PC").ok());
  EXPECT_TRUE(rbac_.AssignUser("bob", "AC").IsConstraintViolation());
}

TEST_F(RbacSystemTest, AuthorizedUsersAndRoles) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  EXPECT_EQ(rbac_.AuthorizedRoles("alice"),
            (std::set<RoleName>{"PM", "PC", "Clerk"}));
  EXPECT_EQ(rbac_.AuthorizedUsers("Clerk"), (std::set<UserName>{"alice"}));
  EXPECT_EQ(rbac_.AuthorizedUsers("PM"), (std::set<UserName>{"alice"}));
  EXPECT_EQ(rbac_.AuthorizedUsers("AM"), (std::set<UserName>{}));
}

TEST_F(RbacSystemTest, ActivationRequiresAuthorization) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  // Senior role activates juniors via hierarchy.
  EXPECT_TRUE(rbac_.AddActiveRole("alice", "s1", "PC").ok());
  EXPECT_TRUE(rbac_.AddActiveRole("alice", "s1", "Clerk").ok());
  // Not authorized for the approval chain.
  EXPECT_TRUE(
      rbac_.AddActiveRole("alice", "s1", "AM").IsConstraintViolation());
}

TEST_F(RbacSystemTest, ActivationChecksOwnershipAndDuplicates) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "Clerk").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(rbac_.AddUser("mallory").ok());
  EXPECT_TRUE(
      rbac_.AddActiveRole("mallory", "s1", "Clerk").IsFailedPrecondition());
  ASSERT_TRUE(rbac_.AddActiveRole("alice", "s1", "Clerk").ok());
  EXPECT_TRUE(
      rbac_.AddActiveRole("alice", "s1", "Clerk").IsAlreadyExists());
}

TEST_F(RbacSystemTest, DsdLimitsSimultaneousActivation) {
  ASSERT_TRUE(rbac_.AddRole("X").ok());
  ASSERT_TRUE(rbac_.AddRole("Y").ok());
  ASSERT_TRUE(rbac_.CreateDsdSet("D", {"X", "Y"}, 2).ok());
  ASSERT_TRUE(rbac_.AssignUser("bob", "X").ok());
  ASSERT_TRUE(rbac_.AssignUser("bob", "Y").ok());  // Assignment is fine.
  ASSERT_TRUE(rbac_.CreateSession("bob", "s1").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("bob", "s1", "X").ok());
  EXPECT_TRUE(
      rbac_.AddActiveRole("bob", "s1", "Y").IsConstraintViolation());
  // A second session may activate the other role (DSD is per session).
  ASSERT_TRUE(rbac_.CreateSession("bob", "s2").ok());
  EXPECT_TRUE(rbac_.AddActiveRole("bob", "s2", "Y").ok());
  // Dropping X in s1 frees Y there.
  ASSERT_TRUE(rbac_.DropActiveRole("bob", "s1", "X").ok());
  EXPECT_TRUE(rbac_.AddActiveRole("bob", "s1", "Y").ok());
}

TEST_F(RbacSystemTest, CheckAccessUsesPermissionInheritance) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("alice", "s1", "PM").ok());
  // PM has no direct grants but inherits PC's and Clerk's.
  EXPECT_TRUE(*rbac_.CheckAccess("s1", "write", "po"));
  EXPECT_TRUE(*rbac_.CheckAccess("s1", "read", "ledger"));
  EXPECT_FALSE(*rbac_.CheckAccess("s1", "write", "ledger"));
  EXPECT_FALSE(rbac_.CheckAccess("ghost", "read", "ledger").ok());
}

TEST_F(RbacSystemTest, CheckAccessOnlyThroughActiveRoles) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  // Authorized but nothing active: no permissions available.
  EXPECT_FALSE(*rbac_.CheckAccess("s1", "read", "ledger"));
}

TEST_F(RbacSystemTest, DeassignDropsNoLongerAuthorizedActiveRoles) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("alice", "s1", "PC").ok());
  ASSERT_TRUE(rbac_.DeassignUser("alice", "PM").ok());
  EXPECT_FALSE(rbac_.db().IsSessionRoleActive("s1", "PC"));
}

TEST_F(RbacSystemTest, DeassignKeepsStillAuthorizedActiveRoles) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  ASSERT_TRUE(rbac_.AssignUser("alice", "PC").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("alice", "s1", "PC").ok());
  ASSERT_TRUE(rbac_.DeassignUser("alice", "PM").ok());
  EXPECT_TRUE(rbac_.db().IsSessionRoleActive("s1", "PC"));
}

TEST_F(RbacSystemTest, AddInheritanceValidatedAgainstSsd) {
  // bob assigned to PM and AM separately would be fine without SoD links,
  // but SoD1 makes PM/AM conflict through PC/AC.
  ASSERT_TRUE(rbac_.AddRole("Super").ok());
  ASSERT_TRUE(rbac_.AssignUser("bob", "Super").ok());
  ASSERT_TRUE(rbac_.AddInheritance("Super", "PM").ok());
  // Super >>= AM would authorize bob for both PC and AC.
  EXPECT_TRUE(rbac_.AddInheritance("Super", "AM").IsConstraintViolation());
  // The rejected edge must have been rolled back.
  EXPECT_FALSE(rbac_.hierarchy().Dominates("Super", "AM"));
}

TEST_F(RbacSystemTest, CreateSsdSetValidatedAgainstExistingAssignments) {
  ASSERT_TRUE(rbac_.AssignUser("bob", "PM").ok());
  ASSERT_TRUE(rbac_.AssignUser("bob", "Clerk").ok());
  // PM is authorized for Clerk; a PM/Clerk SoD set is already violated.
  EXPECT_TRUE(
      rbac_.CreateSsdSet("bad", {"PM", "Clerk"}, 2).IsConstraintViolation());
  EXPECT_FALSE(rbac_.ssd().GetSet("bad").ok());
}

TEST_F(RbacSystemTest, CreateDsdSetValidatedAgainstActiveSessions) {
  ASSERT_TRUE(rbac_.AddRole("X").ok());
  ASSERT_TRUE(rbac_.AddRole("Y").ok());
  ASSERT_TRUE(rbac_.AssignUser("bob", "X").ok());
  ASSERT_TRUE(rbac_.AssignUser("bob", "Y").ok());
  ASSERT_TRUE(rbac_.CreateSession("bob", "s1").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("bob", "s1", "X").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("bob", "s1", "Y").ok());
  EXPECT_TRUE(
      rbac_.CreateDsdSet("D", {"X", "Y"}, 2).IsConstraintViolation());
}

TEST_F(RbacSystemTest, ReviewFunctions) {
  ASSERT_TRUE(rbac_.AssignUser("alice", "PM").ok());
  ASSERT_TRUE(rbac_.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(rbac_.AddActiveRole("alice", "s1", "PM").ok());

  EXPECT_EQ(rbac_.AssignedRoles("alice"), (std::set<RoleName>{"PM"}));
  EXPECT_EQ(rbac_.SessionRoles("s1"), (std::set<RoleName>{"PM"}));
  EXPECT_EQ(rbac_.RolePermissions("PM", /*inherited=*/false).size(), 0u);
  EXPECT_EQ(rbac_.RolePermissions("PM", /*inherited=*/true).size(), 2u);
  EXPECT_EQ(rbac_.UserPermissions("alice").size(), 2u);
  EXPECT_EQ(rbac_.SessionPermissions("s1").size(), 2u);
  EXPECT_EQ(rbac_.RoleOperationsOnObject("PM", "ledger"),
            (std::set<OperationName>{"read"}));
  EXPECT_EQ(rbac_.UserOperationsOnObject("alice", "po"),
            (std::set<OperationName>{"write"}));
}

TEST_F(RbacSystemTest, DeleteRoleScrubsEverything) {
  ASSERT_TRUE(rbac_.AssignUser("bob", "PC").ok());
  ASSERT_TRUE(rbac_.DeleteRole("PC").ok());
  EXPECT_FALSE(rbac_.db().HasRole("PC"));
  EXPECT_FALSE(rbac_.hierarchy().Dominates("PM", "Clerk"));
  // SoD1 shrank below cardinality and is gone: AC alone is unconstrained.
  EXPECT_TRUE(rbac_.AssignUser("bob", "AC").ok());
}

TEST_F(RbacSystemTest, IsAuthorizedMatchesAssignmentsWhenNoHierarchy) {
  RbacSystem flat;
  ASSERT_TRUE(flat.AddUser("u").ok());
  ASSERT_TRUE(flat.AddRole("R").ok());
  ASSERT_TRUE(flat.AssignUser("u", "R").ok());
  EXPECT_TRUE(flat.IsAuthorized("u", "R"));
  EXPECT_FALSE(flat.IsAuthorized("u", "S"));
}

}  // namespace
}  // namespace sentinel
