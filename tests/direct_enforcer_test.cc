#include "baseline/direct_enforcer.h"

#include <gtest/gtest.h>

#include "common/calendar.h"
#include "core/policy_parser.h"
#include "tests/test_util.h"

namespace sentinel {
namespace {

/// Sanity tests for the hand-coded comparator: the same scenarios the
/// engine tests cover, asserting the mirrored semantics directly. (The
/// differential property test covers equivalence exhaustively.)
class DirectEnforcerTest : public ::testing::Test {
 protected:
  DirectEnforcerTest() : clock_(testutil::Noon()), enforcer_(&clock_) {}

  void Load(const std::string& text) {
    auto policy = PolicyParser::Parse(text);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    ASSERT_TRUE(enforcer_.LoadPolicy(*policy).ok());
  }

  SimulatedClock clock_;
  DirectEnforcer enforcer_;
};

TEST_F(DirectEnforcerTest, BasicLifecycle) {
  ASSERT_TRUE(enforcer_.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  EXPECT_TRUE(enforcer_.CreateSession("alice", "s1").allowed);
  EXPECT_FALSE(enforcer_.CreateSession("alice", "s1").allowed);
  EXPECT_TRUE(enforcer_.AddActiveRole("alice", "s1", "PC").allowed);
  EXPECT_TRUE(enforcer_.CheckAccess("s1", "write", "purchase-order").allowed);
  EXPECT_FALSE(enforcer_.CheckAccess("s1", "read", "ledger").allowed ==
               false);  // Inherited from Clerk: allowed.
  EXPECT_TRUE(enforcer_.DropActiveRole("alice", "s1", "PC").allowed);
  EXPECT_FALSE(enforcer_.CheckAccess("s1", "write", "purchase-order").allowed);
  EXPECT_TRUE(enforcer_.DeleteSession("s1").allowed);
}

TEST_F(DirectEnforcerTest, DenyReasonsMatchEngineStrings) {
  ASSERT_TRUE(enforcer_.LoadPolicy(testutil::EnterpriseXyzPolicy()).ok());
  EXPECT_EQ(enforcer_.CreateSession("ghost", "s1").reason,
            "Cannot Create Session");
  EXPECT_EQ(enforcer_.DeleteSession("nope").reason, "No Such Session");
  ASSERT_TRUE(enforcer_.CreateSession("carol", "s1").allowed);
  EXPECT_EQ(enforcer_.AddActiveRole("carol", "s1", "PM").reason,
            "Access Denied Cannot Activate");
  EXPECT_EQ(enforcer_.AddActiveRole("carol", "s1", "Nope").reason,
            "Permission Denied");
  EXPECT_EQ(enforcer_.CheckAccess("s1", "read", "ledger").reason,
            "Permission Denied");
  EXPECT_EQ(enforcer_.AssignUser("alice", "AC").reason, "Cannot Assign");
  EXPECT_EQ(enforcer_.DeassignUser("carol", "PM").reason, "Cannot Deassign");
  EXPECT_EQ(enforcer_.DropActiveRole("carol", "s1", "Clerk").reason,
            "Cannot Deactivate");
}

TEST_F(DirectEnforcerTest, CardinalityAndUserCap) {
  Load(R"(
policy "caps"
role Pres { cardinality: 1 }
role A {}
user u1 { assign: Pres, A  max-active: 1 }
user u2 { assign: Pres }
)");
  ASSERT_TRUE(enforcer_.CreateSession("u1", "s1").allowed);
  ASSERT_TRUE(enforcer_.CreateSession("u2", "s2").allowed);
  EXPECT_TRUE(enforcer_.AddActiveRole("u1", "s1", "Pres").allowed);
  // Role cardinality hit.
  EXPECT_EQ(enforcer_.AddActiveRole("u2", "s2", "Pres").reason,
            "Maximum Number of Roles Reached");
  // User cap hit.
  EXPECT_EQ(enforcer_.AddActiveRole("u1", "s1", "A").reason,
            "Maximum Number of Roles Reached");
  EXPECT_FALSE(enforcer_.rbac().db().IsSessionRoleActive("s1", "A"));
}

TEST_F(DirectEnforcerTest, DurationExpiry) {
  Load(R"(
policy "dur"
role OnCall { max-activation: 1h }
user u { assign: OnCall }
)");
  ASSERT_TRUE(enforcer_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(enforcer_.AddActiveRole("u", "s1", "OnCall").allowed);
  enforcer_.AdvanceTo(testutil::Noon() + kHour - 1);
  EXPECT_TRUE(enforcer_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
  enforcer_.AdvanceTo(testutil::Noon() + kHour);
  EXPECT_FALSE(enforcer_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
}

TEST_F(DirectEnforcerTest, ReactivationGetsFreshExpiry) {
  Load(R"(
policy "dur"
role OnCall { max-activation: 1h }
user u { assign: OnCall }
)");
  ASSERT_TRUE(enforcer_.CreateSession("u", "s1").allowed);
  ASSERT_TRUE(enforcer_.AddActiveRole("u", "s1", "OnCall").allowed);
  enforcer_.AdvanceTo(testutil::Noon() + 10 * kMinute);
  ASSERT_TRUE(enforcer_.DropActiveRole("u", "s1", "OnCall").allowed);
  ASSERT_TRUE(enforcer_.AddActiveRole("u", "s1", "OnCall").allowed);
  enforcer_.AdvanceTo(testutil::Noon() + 65 * kMinute);
  EXPECT_TRUE(enforcer_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
  enforcer_.AdvanceTo(testutil::Noon() + 71 * kMinute);
  EXPECT_FALSE(enforcer_.rbac().db().IsSessionRoleActive("s1", "OnCall"));
}

TEST_F(DirectEnforcerTest, ShiftBoundariesProcessedOnAdvance) {
  Load(R"(
policy "shift"
role DayDoctor { enable: 08:00:00 - 16:00:00 }
user dana { assign: DayDoctor }
)");
  EXPECT_TRUE(enforcer_.role_state().IsEnabled("DayDoctor"));
  ASSERT_TRUE(enforcer_.CreateSession("dana", "s1").allowed);
  ASSERT_TRUE(enforcer_.AddActiveRole("dana", "s1", "DayDoctor").allowed);
  enforcer_.AdvanceTo(MakeTime(2026, 7, 6, 16, 0, 0));
  EXPECT_FALSE(enforcer_.role_state().IsEnabled("DayDoctor"));
  EXPECT_FALSE(enforcer_.rbac().db().IsSessionRoleActive("s1", "DayDoctor"));
  enforcer_.AdvanceTo(MakeTime(2026, 7, 7, 9, 0, 0));
  EXPECT_TRUE(enforcer_.role_state().IsEnabled("DayDoctor"));
}

TEST_F(DirectEnforcerTest, TimeSodMirrorsEngine) {
  Load(R"(
policy "tsod"
role Doctor {}
role Nurse {}
time-sod avail { kind: disabling  roles: Doctor, Nurse
                 window: 10:00:00 - 17:00:00 }
)");
  EXPECT_TRUE(enforcer_.DisableRole("Nurse").allowed);
  Decision d = enforcer_.DisableRole("Doctor");
  EXPECT_FALSE(d.allowed);
  EXPECT_EQ(d.reason, "Denied as Counter-Role Already Disabled");
  EXPECT_TRUE(enforcer_.EnableRole("Nurse").allowed);
  EXPECT_TRUE(enforcer_.DisableRole("Doctor").allowed);
}

TEST_F(DirectEnforcerTest, TransactionWindowInvariant) {
  Load(R"(
policy "tx"
role Manager {}
role JuniorEmp {}
user mgr { assign: Manager }
user jr { assign: JuniorEmp }
transaction t { controller: Manager  dependent: JuniorEmp }
)");
  ASSERT_TRUE(enforcer_.CreateSession("mgr", "sm").allowed);
  ASSERT_TRUE(enforcer_.CreateSession("jr", "sj").allowed);
  EXPECT_FALSE(enforcer_.AddActiveRole("jr", "sj", "JuniorEmp").allowed);
  ASSERT_TRUE(enforcer_.AddActiveRole("mgr", "sm", "Manager").allowed);
  EXPECT_TRUE(enforcer_.AddActiveRole("jr", "sj", "JuniorEmp").allowed);
  ASSERT_TRUE(enforcer_.DropActiveRole("mgr", "sm", "Manager").allowed);
  EXPECT_FALSE(enforcer_.rbac().db().IsSessionRoleActive("sj", "JuniorEmp"));
}

TEST_F(DirectEnforcerTest, CfdMirrorsEngine) {
  Load(R"(
policy "cfd"
role SysAdmin {}
role SysAudit {}
cfd { trigger: SysAdmin  companion: SysAudit }
)");
  ASSERT_TRUE(enforcer_.DisableRole("SysAdmin").allowed);
  ASSERT_TRUE(enforcer_.DisableRole("SysAudit").allowed);
  EXPECT_TRUE(enforcer_.EnableRole("SysAdmin").allowed);
  EXPECT_TRUE(enforcer_.role_state().IsEnabled("SysAudit"));
  EXPECT_TRUE(enforcer_.DisableRole("SysAudit").allowed);
  EXPECT_FALSE(enforcer_.role_state().IsEnabled("SysAdmin"));
}

TEST_F(DirectEnforcerTest, ApplyPolicyUpdateMirrors) {
  Policy base = testutil::EnterpriseXyzPolicy();
  ASSERT_TRUE(enforcer_.LoadPolicy(base).ok());
  Policy after = base;
  (*after.MutableRole("PC"))->activation_cardinality = 1;
  ASSERT_TRUE(enforcer_.ApplyPolicyUpdate(after).ok());
  ASSERT_TRUE(enforcer_.CreateSession("alice", "s1").allowed);
  ASSERT_TRUE(enforcer_.CreateSession("alice", "s2").allowed);
  EXPECT_TRUE(enforcer_.AddActiveRole("alice", "s1", "PC").allowed);
  EXPECT_FALSE(enforcer_.AddActiveRole("alice", "s2", "PC").allowed);
}

}  // namespace
}  // namespace sentinel
