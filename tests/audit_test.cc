#include <gtest/gtest.h>

#include <condition_variable>
#include <cstdio>
#include <fstream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "audit/exporter.h"
#include "audit/record.h"
#include "service/authorization_service.h"

namespace sentinel {
namespace audit {
namespace {

// ------------------------------------------------------------------ helpers

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "sentinelpp_" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

AuditRecord FullRecord() {
  AuditRecord record;
  record.seq = 42;
  record.shard = 3;
  record.epoch = 7;
  record.wall_us = 1786240945885250;
  record.sim_us = 1783328400000000;
  record.kind = "rbac.checkAccess";
  record.user = "alice";
  record.session = "s1";
  record.role = "Doctor";
  record.op = "read";
  record.object = "chart-7";
  record.purpose = "treatment";
  record.allowed = false;
  record.outcome = 1;
  record.rule = "CA.global";
  record.reason = "Permission Denied";
  record.failed_condition = "ANY role IN getSessionRoles";
  record.latency_us = 12;
  return record;
}

// ------------------------------------------------------------ record codec

TEST(AuditRecordTest, RoundTripsEveryField) {
  const AuditRecord record = FullRecord();
  std::string line;
  AppendJsonLine(record, &line);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  AuditRecord parsed;
  std::string error;
  ASSERT_TRUE(ParseJsonLine(line, &parsed, &error)) << error;
  EXPECT_EQ(parsed.v, record.v);
  EXPECT_EQ(parsed.seq, record.seq);
  EXPECT_EQ(parsed.shard, record.shard);
  EXPECT_EQ(parsed.epoch, record.epoch);
  EXPECT_EQ(parsed.wall_us, record.wall_us);
  EXPECT_EQ(parsed.sim_us, record.sim_us);
  EXPECT_EQ(parsed.kind, record.kind);
  EXPECT_EQ(parsed.user, record.user);
  EXPECT_EQ(parsed.session, record.session);
  EXPECT_EQ(parsed.role, record.role);
  EXPECT_EQ(parsed.op, record.op);
  EXPECT_EQ(parsed.object, record.object);
  EXPECT_EQ(parsed.purpose, record.purpose);
  EXPECT_EQ(parsed.allowed, record.allowed);
  EXPECT_EQ(parsed.outcome, record.outcome);
  EXPECT_EQ(parsed.rule, record.rule);
  EXPECT_EQ(parsed.reason, record.reason);
  EXPECT_EQ(parsed.failed_condition, record.failed_condition);
  EXPECT_EQ(parsed.latency_us, record.latency_us);
}

TEST(AuditRecordTest, EscapingTortureRoundTrips) {
  const std::string torture[] = {
      "she said \"hi\"",
      "C:\\path\\to\\file",
      std::string("ctrl:\x01\x02\n\r\t\x1f.", 12),
      "h\xc3\xa9llo \xe4\xb8\x96\xe7\x95\x8c \xf0\x9f\x9a\x80",  // héllo 世界 🚀
      "mix\"of\\every\nthing\x7f",
      "",
  };
  for (const std::string& s : torture) {
    AuditRecord record;
    record.kind = "rbac.checkAccess";
    record.user = s;
    record.reason = s;
    std::string line;
    AppendJsonLine(record, &line);
    AuditRecord parsed;
    std::string error;
    ASSERT_TRUE(ParseJsonLine(line, &parsed, &error))
        << error << " for " << line;
    EXPECT_EQ(parsed.user, s);
    EXPECT_EQ(parsed.reason, s);
  }
}

TEST(AuditRecordTest, EscapedStringsStayOnOneLine) {
  AuditRecord record;
  record.kind = "k";
  record.reason = "two\nlines\rand\ttabs";
  std::string line;
  AppendJsonLine(record, &line);
  // The only newline is the terminator — a raw one would corrupt the stream.
  EXPECT_EQ(line.find('\n'), line.size() - 1);
  EXPECT_EQ(line.find('\r'), std::string::npos);
}

TEST(AuditRecordTest, OmitsEmptyAttributionAndZeroLatency) {
  AuditRecord record;
  record.seq = 1;
  record.kind = "rbac.enableRole";
  record.role = "Doctor";
  record.allowed = true;
  std::string line;
  AppendJsonLine(record, &line);
  EXPECT_EQ(line.find("\"user\""), std::string::npos);
  EXPECT_EQ(line.find("\"purpose\""), std::string::npos);
  EXPECT_EQ(line.find("\"latency_us\""), std::string::npos);
  EXPECT_EQ(line.find("\"failed_condition\""), std::string::npos);
  EXPECT_NE(line.find("\"role\":\"Doctor\""), std::string::npos);
}

TEST(AuditRecordTest, DecodesUnicodeEscapesIncludingSurrogates) {
  AuditRecord parsed;
  std::string error;
  ASSERT_TRUE(ParseJsonLine(
      R"({"v":1,"kind":"k","user":"\u0041\u00e9\u4e16\ud83d\ude00","allowed":true})",
      &parsed, &error))
      << error;
  EXPECT_EQ(parsed.user, "A\xc3\xa9\xe4\xb8\x96\xf0\x9f\x98\x80");
  EXPECT_TRUE(parsed.allowed);
}

TEST(AuditRecordTest, IgnoresUnknownKeysPerAddOnlyContract) {
  AuditRecord parsed;
  ASSERT_TRUE(ParseJsonLine(
      R"({"v":2,"kind":"rbac.checkAccess","from_the_future":"yes","n":3,"allowed":true})",
      &parsed));
  EXPECT_EQ(parsed.v, 2);
  EXPECT_EQ(parsed.kind, "rbac.checkAccess");
  EXPECT_TRUE(parsed.allowed);
}

TEST(AuditRecordTest, RejectsMalformedLines) {
  const char* bad[] = {
      "",
      "not json",
      "{",
      "[1,2]",
      R"({"v":})",
      R"({"v":1 "seq":2})",
      R"({"kind":"unterminated)",
      R"({"kind":"bad escape \q"})",
  };
  for (const char* line : bad) {
    AuditRecord parsed;
    std::string error;
    EXPECT_FALSE(ParseJsonLine(line, &parsed, &error)) << line;
  }
}

// --------------------------------------------------------------- exporter

TEST(AuditExporterTest, WritesParseableLinesAndCounts) {
  const std::string path = TempPath("export_basic.jsonl");
  std::remove(path.c_str());
  AuditExporter::Options options;
  options.path = path;
  AuditExporter exporter(options);
  for (int i = 0; i < 100; ++i) {
    AuditRecord record = FullRecord();
    record.seq = static_cast<uint64_t>(i + 1);
    exporter.Offer(std::move(record));
  }
  exporter.Close();
  EXPECT_FALSE(exporter.failed());
  const auto counters = exporter.counters();
  EXPECT_EQ(counters.records, 100u);
  EXPECT_EQ(counters.drops, 0u);

  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 100u);
  uint64_t bytes = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    AuditRecord parsed;
    ASSERT_TRUE(ParseJsonLine(lines[i], &parsed)) << lines[i];
    EXPECT_EQ(parsed.seq, i + 1);
    bytes += lines[i].size() + 1;  // getline stripped the newline.
  }
  EXPECT_EQ(counters.bytes, bytes);
}

TEST(AuditExporterTest, RotatesBySizeKeepingEveryRecord) {
  const std::string path = TempPath("export_rotate.jsonl");
  for (int i = 0; i <= 64; ++i) {
    std::remove((i == 0 ? path : path + "." + std::to_string(i)).c_str());
  }
  AuditExporter::Options options;
  options.path = path;
  options.rotate_bytes = 600;  // A handful of ~200-byte lines per file.
  AuditExporter exporter(options);
  for (int i = 0; i < 40; ++i) {
    AuditRecord record = FullRecord();
    record.seq = static_cast<uint64_t>(i + 1);
    exporter.Offer(std::move(record));
    exporter.Flush();  // One batch per record: deterministic rotation points.
  }
  exporter.Close();

  // Oldest-first: `<path>.1` was the first file rotated out, ascending
  // suffixes are newer, and the un-suffixed path is the live tail.
  std::vector<uint64_t> seen;
  size_t rotated_files = 0;
  for (int i = 1; i <= 65; ++i) {
    const std::string file = i == 65 ? path : path + "." + std::to_string(i);
    const auto lines = ReadLines(file);
    if (i < 65 && !lines.empty()) ++rotated_files;
    for (const std::string& line : lines) {
      AuditRecord parsed;
      ASSERT_TRUE(ParseJsonLine(line, &parsed)) << file << ": " << line;
      seen.push_back(parsed.seq);
    }
  }
  ASSERT_EQ(seen.size(), 40u);
  EXPECT_GE(rotated_files, 2u) << "rotation never triggered";
  // Oldest-first across rotated files then the live tail, no gaps.
  for (size_t i = 0; i < seen.size(); ++i) EXPECT_EQ(seen[i], i + 1);
}

/// Blocks the writer thread inside its pre-write hook until released, so a
/// test can fill the hand-off queue deterministically.
class WriterGate {
 public:
  std::function<void()> Hook() {
    return [this] {
      std::unique_lock<std::mutex> lock(mu_);
      if (released_) return;
      stalled_ = true;
      cv_.notify_all();
      cv_.wait(lock, [this] { return released_; });
    };
  }
  void WaitUntilStalled() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return stalled_; });
  }
  void Release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  bool stalled_ = false;
  bool released_ = false;
};

TEST(AuditExporterTest, SlowWriterDropsAreCountedExactly) {
  const std::string path = TempPath("export_drops.jsonl");
  std::remove(path.c_str());
  AuditExporter::Options options;
  options.path = path;
  options.queue_capacity = 4;
  AuditExporter exporter(options);
  WriterGate gate;
  exporter.InjectWriterStallForTest(gate.Hook());

  exporter.Offer(FullRecord());  // Swapped into the writer's batch...
  gate.WaitUntilStalled();       // ...which is now parked pre-write.
  for (int i = 0; i < 4; ++i) exporter.Offer(FullRecord());  // Fills queue.
  for (int i = 0; i < 3; ++i) exporter.Offer(FullRecord());  // Dropped.
  EXPECT_EQ(exporter.counters().drops, 3u);

  gate.Release();
  exporter.Close();
  const auto counters = exporter.counters();
  EXPECT_EQ(counters.records, 5u);
  EXPECT_EQ(counters.drops, 3u);
  EXPECT_EQ(ReadLines(path).size(), 5u);
}

TEST(AuditExporterTest, UpstreamLossJoinsTheDropCounter) {
  const std::string path = TempPath("export_upstream.jsonl");
  std::remove(path.c_str());
  AuditExporter::Options options;
  options.path = path;
  AuditExporter exporter(options);
  exporter.AddUpstreamLoss(7);
  exporter.Offer(FullRecord());
  exporter.Close();
  EXPECT_EQ(exporter.counters().records, 1u);
  EXPECT_EQ(exporter.counters().drops, 7u);
}

TEST(AuditExporterTest, UnwritablePathFailsLoudlyWithExactAccounting) {
  AuditExporter::Options options;
  options.path = "/nonexistent-dir/sub/audit.jsonl";
  AuditExporter exporter(options);
  for (int i = 0; i < 3; ++i) exporter.Offer(FullRecord());
  exporter.Close();
  EXPECT_TRUE(exporter.failed());
  EXPECT_EQ(exporter.counters().records, 0u);
  EXPECT_EQ(exporter.counters().drops, 3u);
}

TEST(AuditExporterTest, CloseIsIdempotentAndOffersAfterCloseDrop) {
  const std::string path = TempPath("export_close.jsonl");
  std::remove(path.c_str());
  AuditExporter::Options options;
  options.path = path;
  AuditExporter exporter(options);
  exporter.Offer(FullRecord());
  exporter.Close();
  exporter.Close();
  exporter.Offer(FullRecord());
  EXPECT_EQ(exporter.counters().records, 1u);
  EXPECT_EQ(exporter.counters().drops, 1u);
  EXPECT_EQ(ReadLines(path).size(), 1u);
}

// ------------------------------------------------- service integration

Policy TinyPolicy() {
  Policy policy("audit-tiny");
  RoleSpec role;
  role.name = "worker";
  role.permissions.insert(Permission{"read", "ledger"});
  (void)policy.AddRole(std::move(role));
  UserSpec user;
  user.name = "alice";
  user.assignments.insert("worker");
  (void)policy.AddUser(std::move(user));
  return policy;
}

TEST(ServiceAuditTest, ExportsEveryEngineDecisionWithExactAccounting) {
  const std::string path = TempPath("service_audit.jsonl");
  std::remove(path.c_str());
  ServiceConfig config;
  config.synchronous = true;
  config.num_shards = 1;
  config.audit_path = path;
  AuthorizationService service(config);
  ASSERT_TRUE(service.init_status().ok());
  ASSERT_TRUE(service.LoadPolicy(TinyPolicy()).ok());

  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  ASSERT_TRUE(service.AddActiveRole("alice", "s1", "worker").ok());
  uint64_t issued = 2;
  for (int i = 0; i < 20; ++i) {
    AccessRequest request;
    request.user = "alice";
    request.session = "s1";
    request.operation = i % 2 == 0 ? "read" : "write";  // write -> deny.
    request.object = "ledger";
    const AccessDecision decision = service.CheckAccess(request);
    EXPECT_EQ(decision.outcome, AccessOutcome::kDecided);
    ++issued;
  }
  const ServiceStats live = service.Stats();
  EXPECT_EQ(live.decisions, issued);
  service.Shutdown();

  const auto counters = service.audit_exporter()->counters();
  EXPECT_EQ(counters.drops, 0u);
  EXPECT_EQ(counters.records, issued);
  const auto lines = ReadLines(path);
  ASSERT_EQ(lines.size(), issued);
  uint64_t last_seq = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    AuditRecord parsed;
    ASSERT_TRUE(ParseJsonLine(lines[i], &parsed)) << lines[i];
    EXPECT_EQ(parsed.shard, 0);
    if (i > 0) {
      EXPECT_EQ(parsed.seq, last_seq + 1) << "gap at line " << i;
    }
    last_seq = parsed.seq;
  }

  // Post-shutdown Stats still surfaces the final exporter counters.
  const ServiceStats final_stats = service.Stats();
  EXPECT_EQ(final_stats.audit_records, issued);
  EXPECT_EQ(final_stats.audit_drops, 0u);
  EXPECT_GT(final_stats.audit_bytes, 0u);
}

TEST(ServiceAuditTest, MetricsSurfaceAuditCounters) {
  const std::string path = TempPath("service_audit_metrics.jsonl");
  std::remove(path.c_str());
  ServiceConfig config;
  config.synchronous = true;
  config.num_shards = 1;
  config.audit_path = path;
  AuthorizationService service(config);
  ASSERT_TRUE(service.LoadPolicy(TinyPolicy()).ok());
  ASSERT_TRUE(service.CreateSession("alice", "s1").ok());
  service.audit_exporter()->Flush();

  const std::string text = service.RenderMetrics();
  EXPECT_NE(text.find("decision_log_overflow_total"), std::string::npos);
  EXPECT_NE(text.find("audit_export_records_total"), std::string::npos);
  EXPECT_NE(text.find("audit_export_drops_total"), std::string::npos);
  EXPECT_NE(text.find("audit_export_bytes_total"), std::string::npos);
  const std::string json = service.RenderMetricsJson();
  EXPECT_NE(json.find("audit_export_records_total"), std::string::npos);
  service.Shutdown();
}

TEST(ServiceAuditTest, RejectsZeroQueueCapacityWithAuditPath) {
  ServiceConfig config;
  config.audit_path = TempPath("never_written.jsonl");
  config.audit_queue_capacity = 0;
  EXPECT_FALSE(AuthorizationService::ValidateConfig(config).ok());
}

}  // namespace
}  // namespace audit
}  // namespace sentinel
